//! The traditional comparator system (Figure 6a).
//!
//! One IRAM chip holds `1/N` of the program's memory on-chip; the other
//! `(N-1)/N` lives in memory chips across the same global bus, accessed
//! with a conventional request/response protocol. Write-backs and
//! write-throughs to off-chip lines also cross the bus — the traffic
//! ESP eliminates. To keep the comparison fair (§4.2): the bus is the
//! same, the cache updates at commit like the DataScalar system, and
//! the network interface charges the same queue penalty as the
//! broadcast queue.

use crate::config::DsConfig;
use crate::cub::Dcub;
use crate::linemap::LineMap;
use crate::pending::PendingQueue;
use crate::stats::{NodeStats, RunResult};
use crate::Cycle;
use ds_asm::Program;
use ds_cpu::{
    ExecError, ExecRecord, FuncCore, LoadResponse, MemSystem, OooCore, RuuTag, TraceSource,
};
use ds_mem::{
    AccessKind, Cache, CacheOutcome, MainMemory, MemImage, PageTable, PageTableBuilder, Segment,
    Tlb, Victim,
};
use ds_net::{Bus, Message, MsgKind};
use std::rc::Rc;

/// Configuration of the traditional system.
#[derive(Debug, Clone)]
pub struct TraditionalConfig {
    /// Shared machine parameters (core, caches, memory, bus, page
    /// size, distribution block). `nodes = N` means `1/N` of memory is
    /// on-chip — the paper compares an `N`-node DataScalar machine
    /// against a traditional system with the same on-chip share.
    pub base: DsConfig,
}

impl TraditionalConfig {
    /// A traditional system whose on-chip share matches an `N`-node
    /// DataScalar machine.
    pub fn with_onchip_share(n: usize) -> Self {
        TraditionalConfig { base: DsConfig::with_nodes(n) }
    }
}

const CPU_PORT: usize = 0;
const MEM_PORT: usize = 1;

#[derive(Debug)]
struct TradMemSide {
    pt: Rc<PageTable>,
    canon: Cache,
    icache: Cache,
    local_mem: MainMemory,
    dcub: Dcub,
    dtlb: Option<Tlb>,
    tlb_walk_cycles: u64,
    line_bytes: u64,
    queue_penalty: u64,
    /// Loads blocked on an off-chip response, per line.
    waiting: LineMap<Vec<RuuTag>>,
    /// Cycle each in-flight request entered the output queue, per line
    /// — the near end of the round trip, so the critical-path analyzer
    /// can measure the traditional system's communication edges
    /// end-to-end (request out + memory + response back).
    req_sent: LineMap<Cycle>,
    outgoing: PendingQueue,
    seq: u64,
    stats: NodeStats,
}

impl TradMemSide {
    fn send(&mut self, kind: MsgKind, line: u64, payload: u64, ready: Cycle) {
        self.outgoing.push(
            ready,
            Message {
                src: CPU_PORT,
                dest: Some(MEM_PORT),
                kind,
                line_addr: line,
                payload_bytes: payload,
                seq: self.seq,
                enqueued_at: ready,
            },
        );
        self.seq += 1;
    }

    fn handle_victim(&mut self, victim: Option<Victim>, now: Cycle) {
        let Some(v) = victim else { return };
        if !v.dirty {
            return;
        }
        if self.pt.is_local(v.line_addr, 0) {
            self.local_mem.access(v.line_addr, self.line_bytes, now);
            self.stats.writebacks_local += 1;
        } else {
            self.send(MsgKind::WriteBack, v.line_addr, self.line_bytes, now + self.queue_penalty);
        }
    }

    /// A commit-time miss with no in-flight episode (false hit): fill
    /// the canonical cache in the background, paying the traffic but
    /// not blocking the already-completed load.
    fn fill_repair(&mut self, line: u64, now: Cycle) {
        if self.pt.is_local(line, 0) {
            self.local_mem.access(line, self.line_bytes, now);
        } else {
            self.send(MsgKind::Request, line, 0, now + self.queue_penalty);
            self.req_sent.insert(line, now + self.queue_penalty);
        }
    }
}

impl MemSystem for TradMemSide {
    fn load_issued(&mut self, rec: &ExecRecord, now: Cycle, tag: RuuTag) -> (LoadResponse, bool) {
        let addr = rec.mem_addr;
        let line = self.canon.line_addr(addr);
        self.stats.loads_issued += 1;
        let now = match &mut self.dtlb {
            Some(tlb) => ds_mem::translate(tlb, addr, now, self.tlb_walk_cycles),
            None => now,
        };
        if let Some(e) = self.dcub.get(line) {
            return match e.ready_at {
                Some(r) => (LoadResponse::Ready(r.max(now + 1)), false),
                None => {
                    self.waiting.get_mut_or_default(line).push(tag);
                    (LoadResponse::Pending, false)
                }
            };
        }
        if self.canon.probe(addr) {
            self.stats.issue_hits += 1;
            return (LoadResponse::Ready(now + 1), true);
        }
        if self.pt.is_local(addr, 0) {
            self.stats.local_misses += 1;
            let done = self.local_mem.access(line, self.line_bytes, now);
            self.dcub.insert(line, Some(done), false);
            (LoadResponse::Ready(done), false)
        } else {
            self.stats.remote_accesses += 1;
            self.send(MsgKind::Request, line, 0, now + self.queue_penalty);
            self.req_sent.insert(line, now + self.queue_penalty);
            self.dcub.insert(line, None, false);
            self.waiting.get_mut_or_default(line).push(tag);
            (LoadResponse::Pending, false)
        }
    }

    fn mem_committed(&mut self, rec: &ExecRecord, issue_hit: Option<bool>, now: Cycle) {
        let addr = rec.mem_addr;
        let line = self.canon.line_addr(addr);
        if rec.is_store() {
            match self.canon.access(addr, AccessKind::Write) {
                CacheOutcome::Hit => {}
                CacheOutcome::Miss { allocated: false, .. } => {
                    if self.pt.is_local(addr, 0) {
                        self.local_mem.access(addr, rec.mem_bytes, now);
                        self.stats.writethroughs_local += 1;
                    } else {
                        self.send(
                            MsgKind::WriteThrough,
                            line,
                            rec.mem_bytes,
                            now + self.queue_penalty,
                        );
                    }
                }
                CacheOutcome::Miss { allocated: true, victim } => {
                    self.handle_victim(victim, now);
                    if self.dcub.remove(line).is_none() {
                        self.fill_repair(line, now);
                    }
                }
            }
            self.stats.stores_committed += 1;
            return;
        }
        match self.canon.access(addr, AccessKind::Read) {
            CacheOutcome::Hit => {
                if issue_hit == Some(false) {
                    self.stats.false_misses += 1;
                }
            }
            CacheOutcome::Miss { victim, .. } => {
                self.handle_victim(victim, now);
                if self.dcub.remove(line).is_none() {
                    if issue_hit == Some(true) {
                        self.stats.false_hits += 1;
                    }
                    self.fill_repair(line, now);
                }
            }
        }
    }

    fn fetch_line(&mut self, pc: u64, now: Cycle) -> Cycle {
        // Text is assumed resident on-chip (the DataScalar machine
        // replicates it; giving the traditional system the same benefit
        // keeps the comparison about data).
        let line = self.icache.line_addr(pc);
        match self.icache.access(pc, AccessKind::Read) {
            CacheOutcome::Hit => now,
            CacheOutcome::Miss { .. } => self.local_mem.access(line, self.line_bytes, now),
        }
    }
}

/// The traditional (request/response) IRAM system.
#[derive(Debug)]
pub struct TraditionalSystem {
    core: OooCore,
    ms: TradMemSide,
    bus: Bus,
    /// Off-chip memory chips behind the bus.
    remote_mem: MainMemory,
    /// Responses waiting for their data-ready cycle.
    pending_responses: PendingQueue,
    trace: TraceSource,
    cycles: Cycle,
    max_insts: u64,
    watchdog_cycles: u64,
    queue_penalty: u64,
    /// `Some` once the forward-progress watchdog has tripped.
    deadlock: Option<Box<crate::watchdog::DeadlockReport>>,
    /// Cycle accounting (observational; instrumented builds only).
    #[cfg(feature = "obs")]
    probe: crate::node::NodeProbe,
}

impl TraditionalSystem {
    /// Builds the system for `program`.
    pub fn new(config: &TraditionalConfig, program: &Program) -> Self {
        let base = &config.base;
        base.validate();
        // The same round-robin distribution as the DataScalar machine;
        // "node 0" is the on-chip share.
        let mut ptb = PageTableBuilder::new(base.page_bytes, base.nodes);
        for (start, end, seg) in program.regions() {
            ptb.add_region(start, end, seg);
        }
        if base.replicate_text {
            ptb.replicate_segment(Segment::Text);
        }
        ptb.distribute_round_robin(base.dist_block_pages);
        let pt = Rc::new(ptb.build());

        let mut mem = MemImage::new();
        program.load(&mut mem);
        let mut bus_cfg = base.bus;
        bus_cfg.ports = 2;
        #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
        let mut core = OooCore::new(base.core, base.icache.line_bytes);
        #[cfg(feature = "obs")]
        core.set_crit_window_capacity(base.crit_window_capacity);
        TraditionalSystem {
            core,
            ms: TradMemSide {
                pt,
                canon: Cache::new(base.dcache),
                icache: Cache::new(base.icache),
                local_mem: MainMemory::new(base.memory),
                dcub: Dcub::new(),
                dtlb: base.tlb.map(Tlb::new),
                tlb_walk_cycles: base.tlb_walk_cycles,
                line_bytes: base.dcache.line_bytes,
                queue_penalty: base.queue_penalty,
                waiting: LineMap::new(),
                req_sent: LineMap::new(),
                outgoing: PendingQueue::new(),
                seq: 0,
                stats: NodeStats::default(),
            },
            bus: Bus::new(bus_cfg),
            remote_mem: MainMemory::new(base.memory),
            pending_responses: PendingQueue::new(),
            trace: TraceSource::new(FuncCore::with_stack(program.entry, program.stack_top), mem),
            cycles: 0,
            max_insts: base.max_insts.unwrap_or(u64::MAX),
            watchdog_cycles: base.watchdog_cycles,
            queue_penalty: base.queue_penalty,
            deadlock: None,
            #[cfg(feature = "obs")]
            probe: Default::default(),
        }
    }

    /// Runs to completion (or the instruction cap). If no instruction
    /// commits for the configured watchdog window (a lost response —
    /// must not happen), the run terminates with a structured
    /// [`crate::watchdog::DeadlockReport`] on `RunResult::deadlock`.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors.
    pub fn run(&mut self) -> Result<RunResult, ExecError> {
        let mut wd = crate::watchdog::ForwardProgress::new(self.watchdog_cycles);
        // Reused every cycle; the hot loop allocates nothing.
        let mut deliveries = Vec::new();
        while !self.core.is_done() && self.core.committed() < self.max_insts {
            let now = self.cycles;
            self.core.step(&mut self.ms, &mut self.trace, now)?;
            #[cfg(feature = "obs")]
            self.charge_cycle(now);
            // Due CPU-side messages and memory-side responses enter the
            // bus merged in (ready, seq) order, CPU side first on ties
            // (the order the old merge-and-stable-sort produced).
            loop {
                let cpu = self.ms.outgoing.peek_due(now);
                let mem = self.pending_responses.peek_due(now);
                let msg = match (cpu, mem) {
                    (Some(kc), Some(km)) if kc <= km => self.ms.outgoing.pop_due(now),
                    (Some(_), Some(_)) | (None, Some(_)) => self.pending_responses.pop_due(now),
                    (Some(_), None) => self.ms.outgoing.pop_due(now),
                    (None, None) => None,
                };
                let Some(msg) = msg else { break };
                self.bus.enqueue(msg);
            }
            self.bus.step_into(now, &mut deliveries);
            // `deliveries` is a local scratch buffer, so iterating it
            // while mutating `self` is fine.
            let batch = std::mem::take(&mut deliveries);
            for d in &batch {
                self.on_delivery(d.msg, now);
            }
            deliveries = batch;
            self.cycles += 1;
            if now.is_multiple_of(1024) {
                self.trace.trim(self.core.fetch_cursor());
            }
            if wd.watchdog_check(self.core.committed(), self.cycles) {
                self.deadlock = Some(Box::new(self.build_deadlock_report()));
                break;
            }
        }
        Ok(self.result())
    }

    /// The structured evidence a wedged run terminates with (one-node
    /// machine: the CPU side plus both bus directions). Cold path.
    fn build_deadlock_report(&self) -> crate::watchdog::DeadlockReport {
        let mut report = crate::watchdog::DeadlockReport {
            cycle: self.cycles,
            committed: self.core.committed(),
            nodes: vec![crate::watchdog::NodeDeadlockState {
                node: 0,
                committed: self.core.committed(),
                oldest: self.core.oldest_entry(),
                bshr_waits: self.ms.waiting.entries().iter().map(|&(l, _)| l).collect(),
                ..Default::default()
            }],
            in_flight: Vec::new(),
            recent_events: Vec::new(),
        };
        self.bus.pending_into(&mut report.in_flight);
        #[cfg(feature = "obs")]
        {
            let evs: Vec<ds_obs::Event> = self.core.events().iter().cloned().collect();
            let tail = crate::watchdog::REPORT_EVENT_TAIL;
            let skip = evs.len().saturating_sub(tail);
            report.recent_events = evs.into_iter().skip(skip).collect();
        }
        report
    }

    fn on_delivery(&mut self, msg: Message, now: Cycle) {
        match msg.kind {
            MsgKind::Request => {
                let done = self.remote_mem.access(msg.line_addr, self.ms.line_bytes, now);
                self.pending_responses.push(
                    done + self.queue_penalty,
                    Message {
                        src: MEM_PORT,
                        dest: Some(CPU_PORT),
                        kind: MsgKind::Response,
                        line_addr: msg.line_addr,
                        payload_bytes: self.ms.line_bytes,
                        seq: msg.seq,
                        enqueued_at: done + self.queue_penalty,
                    },
                );
            }
            MsgKind::WriteBack | MsgKind::WriteThrough => {
                self.remote_mem.access(msg.line_addr, msg.payload_bytes.max(1), now);
            }
            MsgKind::Response => {
                let ready = now + 1;
                self.ms.dcub.mark_ready(msg.line_addr, ready);
                let sent = self.ms.req_sent.remove(msg.line_addr);
                if let Some(waiters) = self.ms.waiting.remove(msg.line_addr) {
                    for tag in waiters {
                        // Tag the fill with the request's send cycle so
                        // the critical-path walk sees the whole round
                        // trip, not just the response leg.
                        match sent {
                            Some(s) => self.core.complete_load_from(tag, ready, msg.line_addr, s),
                            None => self.core.complete_load(tag, ready),
                        }
                    }
                }
            }
            MsgKind::Broadcast | MsgKind::RetransmitReq => {
                unreachable!("no ESP traffic in the traditional system")
            }
        }
    }

    /// Charges `now` to one stall bucket. No BSHR exists here, so a
    /// remote wait is a generic off-chip request/response wait: charged
    /// to bus contention while the bus is occupied, otherwise to the
    /// `bshr-wait-remote` bucket in its generic "waiting on remote
    /// data" reading.
    #[cfg(feature = "obs")]
    fn charge_cycle(&mut self, now: Cycle) {
        use ds_cpu::CoreStall;
        use ds_obs::{PcStallKind, Probe as _, StallBucket};
        let bucket = match self.core.stall_class(now) {
            CoreStall::Committing => StallBucket::Committing,
            CoreStall::RemoteMemWait { pc } => {
                if !self.bus.is_idle() {
                    StallBucket::BusContentionWait
                } else {
                    self.probe.charge_pc(pc, PcStallKind::RemoteWait);
                    StallBucket::BshrWaitRemote
                }
            }
            CoreStall::LocalMemWait { pc } => {
                self.probe.charge_pc(pc, PcStallKind::LocalWait);
                StallBucket::LocalMemWait
            }
            CoreStall::RuuFull => StallBucket::RuuFull,
            CoreStall::LsqFull => StallBucket::LsqFull,
            CoreStall::SquashReplay => StallBucket::SquashReplay,
            CoreStall::FetchStall => StallBucket::FetchStall,
            CoreStall::Idle => StallBucket::Idle,
        };
        self.probe.charge(bucket);
    }

    /// The results accumulated so far.
    pub fn result(&self) -> RunResult {
        let mut stats = self.ms.stats;
        stats.core = *self.core.stats();
        stats.dcub_max = self.ms.dcub.max_occupancy();
        RunResult {
            cycles: self.cycles,
            committed: self.core.committed(),
            nodes: vec![stats],
            bus: *self.bus.stats(),
            trace_window_high_water: self.trace.max_window_len(),
            metrics: self.metrics(),
            deadlock: self.deadlock.clone(),
        }
    }

    #[cfg(not(feature = "obs"))]
    fn metrics(&self) -> Option<ds_obs::MetricsReport> {
        None
    }

    #[cfg(feature = "obs")]
    fn metrics(&self) -> Option<ds_obs::MetricsReport> {
        let mut m = ds_obs::MetricsReport::default();
        m.absorb(self.core.events());
        let acct = *self.probe.account();
        #[cfg(any(debug_assertions, feature = "audit"))]
        assert_eq!(acct.total(), self.cycles, "stall buckets must sum to total cycles");
        m.node_accounts.push(acct);
        m.hot_pcs = ds_obs::top_hot_pcs([self.probe.pc_profile()], 16);
        m.critpath.nodes.push(self.core.crit_window().path_report());
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_asm::assemble;

    fn strided_prog() -> Program {
        assemble(
            r#"
            .data
            arr: .space 65536
            .text
            main:   li   t0, 512
                    la   t1, arr
                    li   t2, 0
            loop:   ld   t3, 0(t1)
                    add  t2, t2, t3
                    addi t1, t1, 128
                    addi t0, t0, -1
                    bnez t0, loop
                    halt
            "#,
        )
        .unwrap()
    }

    #[test]
    fn runs_and_pays_offchip_latency() {
        let config = TraditionalConfig::with_onchip_share(2);
        let mut sys = TraditionalSystem::new(&config, &strided_prog());
        let r = sys.run().unwrap();
        assert!(r.committed > 2000);
        let s = &r.nodes[0];
        assert!(s.remote_accesses > 0, "half the pages are off-chip");
        assert!(s.local_misses > 0, "half the pages are on-chip");
        assert!(r.bus.requests > 0);
        assert_eq!(r.bus.requests, s.remote_accesses, "one request per remote miss");
        assert!(r.bus.responses >= r.bus.requests - 5, "responses roughly pair requests");
        assert_eq!(r.bus.broadcasts, 0);
    }

    #[test]
    fn smaller_onchip_share_is_slower() {
        let mut half = TraditionalSystem::new(&TraditionalConfig::with_onchip_share(2), &strided_prog());
        let r_half = half.run().unwrap();
        let mut quarter =
            TraditionalSystem::new(&TraditionalConfig::with_onchip_share(4), &strided_prog());
        let r_quarter = quarter.run().unwrap();
        assert!(
            r_quarter.ipc() <= r_half.ipc() * 1.02,
            "1/4 on-chip ({:.3}) should not beat 1/2 on-chip ({:.3})",
            r_quarter.ipc(),
            r_half.ipc()
        );
    }

    #[test]
    fn store_misses_write_through_offchip() {
        let prog = assemble(
            r#"
            .data
            arr: .space 32768
            .text
            main:   li   t0, 256
                    la   t1, arr
            loop:   sd   t0, 0(t1)
                    addi t1, t1, 128
                    addi t0, t0, -1
                    bnez t0, loop
                    halt
            "#,
        )
        .unwrap();
        let config = TraditionalConfig::with_onchip_share(2);
        let mut sys = TraditionalSystem::new(&config, &prog);
        let r = sys.run().unwrap();
        assert!(r.bus.writes > 0, "off-chip store traffic exists");
        assert!(r.nodes[0].writethroughs_local > 0, "on-chip stores stay local");
    }
}
