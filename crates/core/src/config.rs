//! DataScalar system configuration.

use ds_cpu::OooConfig;
use ds_mem::{CacheConfig, MemoryTimingConfig};
use ds_net::BusConfig;

/// Full configuration of a DataScalar machine.
///
/// The defaults are the paper's §4.2 simulated implementation (with the
/// substitutions recorded in `DESIGN.md` for values the text lost):
/// 8-wide 1 GHz out-of-order cores with 256 RUU entries, split 16 KiB
/// direct-mapped single-cycle L1s (D-cache write-back
/// write-no-allocate), 8-cycle banked on-chip memory, an 8-byte
/// off-chip bus at one tenth the core clock, 128-entry 2-cycle BSHRs, a
/// 2-cycle broadcast-queue penalty, 4 KiB pages distributed round-robin,
/// and the program text replicated at every node.
#[derive(Debug, Clone)]
pub struct DsConfig {
    /// Number of processor/memory nodes.
    pub nodes: usize,
    /// Out-of-order core parameters.
    pub core: OooConfig,
    /// D-cache geometry (must keep correspondence; updated at commit).
    pub dcache: CacheConfig,
    /// I-cache geometry (text is replicated; updated at fetch).
    pub icache: CacheConfig,
    /// Local (on-chip) memory timing.
    pub memory: MemoryTimingConfig,
    /// Global bus parameters (`ports` is overridden with `nodes`).
    pub bus: BusConfig,
    /// Interconnect topology: the paper evaluates a bus and envisions a
    /// ring (§4.4); both are available.
    pub interconnect: ds_net::FabricKind,
    /// BSHR capacity in entries.
    pub bshr_entries: usize,
    /// BSHR access latency in cycles.
    pub bshr_access_cycles: u64,
    /// Broadcast-queue penalty before data reaches the bus (the
    /// traditional system's network interface pays the same).
    pub queue_penalty: u64,
    /// Architectural page size in bytes.
    pub page_bytes: u64,
    /// Communicated pages are distributed round-robin in blocks of this
    /// many pages (the paper's §3.2 distribution size).
    pub dist_block_pages: u64,
    /// Replicate the text segment at every node (§4.2 does; it removes
    /// the need for an instruction CUB).
    pub replicate_text: bool,
    /// Additional virtual page numbers to replicate statically (e.g.
    /// chosen by profiling, as in §3.2).
    pub replicated_vpns: Vec<u64>,
    /// Optional data-TLB geometry (`None` = free translation, the
    /// paper's implicit assumption; the ablation harness sweeps this).
    pub tlb: Option<ds_mem::TlbConfig>,
    /// Page-table-walk cost in cycles on a TLB miss (one access to the
    /// single-level table locked in local low memory, §4.2).
    pub tlb_walk_cycles: u64,
    /// Stop after this many committed instructions per node (`None` =
    /// run to completion).
    pub max_insts: Option<u64>,
    /// Abort if no node commits for this many cycles (deadlock guard).
    pub watchdog_cycles: u64,
    /// Fault injection: silently drop every `n`-th broadcast at
    /// delivery. The protocol guarantees this deadlocks a waiting node
    /// (absent BSHR timeouts), so the expected outcome is a watchdog
    /// `DeadlockReport` — used to prove the tripwire works. `None` (the
    /// default) injects nothing. Predates (and is retained alongside)
    /// the richer [`DsConfig::fault_plan`].
    pub fault_drop_every: Option<u64>,
    /// ds-chaos fault schedule: drop/delay/duplicate/reorder rules
    /// applied at the fabric's delivery boundary plus per-node tick
    /// stalls. Empty (the default) compiles down to no injector at all,
    /// keeping goldens byte-identical.
    pub fault_plan: ds_net::FaultPlan,
    /// BSHR hardening: a non-owner wait older than this many cycles
    /// escalates to an explicit retransmit request to the owner. `None`
    /// (the default) disables the timeout machinery entirely — the
    /// fault-free protocol never needs it.
    pub bshr_timeout_cycles: Option<u64>,
    /// How many timeouts a line may suffer before it degrades to the
    /// traditional request–response protocol for the rest of the run.
    pub bshr_retry_budget: u32,
    /// Critical-path window capacity per core, in retirements
    /// (instrumented builds only; ignored without the `obs` feature).
    /// The default keeps an instrumented run cheap; benches that need
    /// the attributed span to cover most of the run size it to the
    /// instruction budget (see `ds_bench::baseline_config`).
    pub crit_window_capacity: usize,
    /// Disable event-horizon cycle skipping and run the naive
    /// cycle-by-cycle reference loop. The skipping engine is
    /// behavior-invariant (asserted by `tests/skip_equivalence.rs`
    /// against this path), so the only reason to set this is that
    /// equivalence check itself, or profiling the naive loop.
    pub no_skip: bool,
    /// Step nodes on worker threads each cycle, merging interconnect
    /// and broadcast effects on the coordinating thread in node order.
    /// Deterministic: results are identical to the serial engine
    /// regardless of worker count. Off by default — it only pays on
    /// many-node configurations.
    pub parallel_step: bool,
}

impl Default for DsConfig {
    fn default() -> Self {
        DsConfig {
            nodes: 2,
            core: OooConfig::default(),
            dcache: CacheConfig::timing_dcache(),
            icache: CacheConfig::timing_icache(),
            memory: MemoryTimingConfig::default(),
            bus: BusConfig::default(),
            interconnect: ds_net::FabricKind::Bus,
            bshr_entries: 128,
            bshr_access_cycles: 2,
            queue_penalty: 2,
            page_bytes: 4096,
            dist_block_pages: 1,
            replicate_text: true,
            replicated_vpns: Vec::new(),
            tlb: None,
            tlb_walk_cycles: 9,
            max_insts: None,
            watchdog_cycles: 2_000_000,
            fault_drop_every: None,
            fault_plan: ds_net::FaultPlan::default(),
            bshr_timeout_cycles: None,
            bshr_retry_budget: 3,
            crit_window_capacity: ds_obs::critpath::DEFAULT_CRIT_WINDOW_CAPACITY,
            no_skip: false,
            parallel_step: false,
        }
    }
}

impl DsConfig {
    /// A configuration with `nodes` nodes and defaults elsewhere.
    pub fn with_nodes(nodes: usize) -> Self {
        DsConfig { nodes, ..Default::default() }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero nodes, page
    /// smaller than a cache line, ...). Called by the system builders.
    pub fn validate(&self) {
        assert!(self.nodes >= 1, "need at least one node");
        assert!(
            self.page_bytes >= self.dcache.line_bytes,
            "pages must be at least one cache line"
        );
        assert!(self.page_bytes.is_power_of_two(), "page size must be a power of two");
        assert!(self.dist_block_pages >= 1, "distribution block must be positive");
        assert!(self.bshr_entries >= 1, "need at least one BSHR entry");
        assert!(
            self.crit_window_capacity >= 1,
            "need at least one critical-path window slot"
        );
        assert!(
            self.bshr_timeout_cycles != Some(0),
            "a zero BSHR timeout would retransmit every cycle"
        );
        self.fault_plan.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_baseline() {
        let c = DsConfig::default();
        assert_eq!(c.core.ruu_entries, 256);
        assert_eq!(c.dcache.size_bytes, 16 * 1024);
        assert_eq!(c.dcache.assoc, 1);
        assert_eq!(c.memory.access_cycles, 8);
        assert_eq!(c.bus.width_bytes, 8);
        assert_eq!(c.bus.clock_divisor, 10);
        assert!(c.replicate_text);
        c.validate();
    }

    #[test]
    fn with_nodes_sets_count() {
        let c = DsConfig::with_nodes(4);
        assert_eq!(c.nodes, 4);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        DsConfig { nodes: 0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "at least one cache line")]
    fn tiny_pages_rejected() {
        DsConfig { page_bytes: 16, ..Default::default() }.validate();
    }
}
