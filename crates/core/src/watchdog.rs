//! Forward-progress monitoring and structured deadlock reports.
//!
//! The cache-correspondence protocol is correct only while every
//! broadcast pairs with its BSHR waiters — the paper's own warning is
//! that otherwise "broadcasts/waits would not pair up and the machine
//! deadlocks" (§1). Under ds-chaos fault injection that failure surface
//! is exercised on purpose, so a hung run must terminate with evidence,
//! not spin: [`ForwardProgress`] watches the committed-instruction
//! total and trips after a configurable quiet window, and the system
//! models respond by assembling a [`DeadlockReport`] — per-node oldest
//! RUU entry, BSHR residents, in-flight interconnect messages, and the
//! tail of the observability event ring — instead of panicking or
//! hanging.
//!
//! The check itself is hot-path code (one call per monitored cycle
//! range) and is an analyze root (`watchdog*`): allocation-free,
//! panic-free, deterministic. Report *construction* is cold and
//! allocates freely.

use crate::Cycle;
use ds_cpu::RuuSnapshot;
use ds_net::Message;
use ds_obs::Event;
use std::fmt;

/// Tracks whether the machine keeps retiring instructions. Trips when
/// no instruction commits system-wide for `limit` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardProgress {
    limit: Cycle,
    last_total: u64,
    last_progress_cycle: Cycle,
}

impl ForwardProgress {
    /// A monitor that trips after `limit` cycles without a commit.
    pub fn new(limit: Cycle) -> Self {
        ForwardProgress { limit, last_total: 0, last_progress_cycle: 0 }
    }

    /// Feeds the current committed total at `now`; returns `true` when
    /// the quiet window exceeded the limit and the run should abort
    /// with a report. Hot path: one comparison either way.
    #[inline]
    pub fn watchdog_check(&mut self, total_committed: u64, now: Cycle) -> bool {
        if total_committed != self.last_total {
            self.last_total = total_committed;
            self.last_progress_cycle = now;
            return false;
        }
        now.saturating_sub(self.last_progress_cycle) > self.limit
    }

    /// The cycle at which the monitor would trip absent further
    /// progress. Event-horizon skipping clamps to this so a skip never
    /// jumps past the trip cycle — naive and skipping engines abort at
    /// the identical cycle.
    #[inline]
    pub fn watchdog_deadline(&self) -> Cycle {
        self.last_progress_cycle.saturating_add(self.limit)
    }

    /// The cycle the committed total last moved (as observed by
    /// [`ForwardProgress::watchdog_check`]).
    #[inline]
    pub fn watchdog_last_progress(&self) -> Cycle {
        self.last_progress_cycle
    }
}

/// What one node looked like at the moment the watchdog tripped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeDeadlockState {
    /// Node id.
    pub node: usize,
    /// Instructions this node had committed.
    pub committed: u64,
    /// The instruction its commit stage was waiting on, if any.
    pub oldest: Option<RuuSnapshot>,
    /// Lines with outstanding BSHR waits.
    pub bshr_waits: Vec<u64>,
    /// Lines sitting buffered in the BSHR (arrived, unconsumed).
    pub bshr_buffered: Vec<u64>,
    /// Lines with pending reparative squashes.
    pub pending_squashes: Vec<u64>,
    /// Lines degraded to the request–response protocol.
    pub degraded_lines: Vec<u64>,
    /// For chaos-stalled nodes: the cycle the stall releases.
    pub stalled_until: Option<Cycle>,
}

/// The structured evidence a wedged run terminates with, carried on
/// `RunResult::deadlock` instead of a panic or an endless loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Cycle the watchdog tripped.
    pub cycle: Cycle,
    /// Instructions committed system-wide at the trip.
    pub committed: u64,
    /// Per-node snapshots, indexed by node id.
    pub nodes: Vec<NodeDeadlockState>,
    /// Messages queued, in flight, or fault-deferred on the
    /// interconnect at the trip.
    pub in_flight: Vec<Message>,
    /// The last events (up to 64) from the observability rings; empty
    /// on uninstrumented builds.
    pub recent_events: Vec<Event>,
}

/// Events retained from the obs ring tail in a report.
pub const REPORT_EVENT_TAIL: usize = 64;

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deadlock at cycle {}: no commit for the watchdog window ({} insts retired)",
            self.cycle, self.committed
        )?;
        for n in &self.nodes {
            write!(f, "  node {}: committed {}", n.node, n.committed)?;
            if let Some(o) = &n.oldest {
                write!(
                    f,
                    ", head pc={:#x} icount={} state={}{}",
                    o.pc,
                    o.icount,
                    o.state,
                    if o.pending_remote { " (awaiting remote fill)" } else { "" }
                )?;
            }
            if let Some(until) = n.stalled_until {
                write!(f, ", chaos-stalled until {until}")?;
            }
            writeln!(f)?;
            if !n.bshr_waits.is_empty() {
                writeln!(f, "    bshr waits: {:#x?}", n.bshr_waits)?;
            }
            if !n.bshr_buffered.is_empty() {
                writeln!(f, "    bshr buffered: {:#x?}", n.bshr_buffered)?;
            }
            if !n.pending_squashes.is_empty() {
                writeln!(f, "    pending squashes: {:#x?}", n.pending_squashes)?;
            }
            if !n.degraded_lines.is_empty() {
                writeln!(f, "    degraded lines: {:#x?}", n.degraded_lines)?;
            }
        }
        writeln!(f, "  in-flight messages: {}", self.in_flight.len())?;
        for m in &self.in_flight {
            writeln!(
                f,
                "    {:?} line {:#x} src {} dest {:?} (enqueued at {})",
                m.kind, m.line_addr, m.src, m.dest, m.enqueued_at
            )?;
        }
        if !self.recent_events.is_empty() {
            writeln!(f, "  last {} events:", self.recent_events.len())?;
            for e in &self.recent_events {
                writeln!(f, "    [{}] {:?}", e.cycle, e.kind)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_resets_the_window() {
        let mut fp = ForwardProgress::new(100);
        assert!(!fp.watchdog_check(0, 0));
        assert!(!fp.watchdog_check(0, 100), "at the limit, not past it");
        assert!(!fp.watchdog_check(5, 101), "progress resets");
        assert_eq!(fp.watchdog_deadline(), 201);
        assert!(!fp.watchdog_check(5, 201));
        assert!(fp.watchdog_check(5, 202), "past the limit without progress");
    }

    #[test]
    fn deadline_tracks_last_progress() {
        let mut fp = ForwardProgress::new(1000);
        assert_eq!(fp.watchdog_deadline(), 1000);
        fp.watchdog_check(7, 400);
        assert_eq!(fp.watchdog_deadline(), 1400);
        // No progress: deadline unchanged.
        fp.watchdog_check(7, 900);
        assert_eq!(fp.watchdog_deadline(), 1400);
    }

    #[test]
    fn report_renders_every_section() {
        let report = DeadlockReport {
            cycle: 5000,
            committed: 123,
            nodes: vec![NodeDeadlockState {
                node: 0,
                committed: 123,
                oldest: None,
                bshr_waits: vec![0x1000],
                bshr_buffered: vec![0x2000],
                pending_squashes: vec![],
                degraded_lines: vec![0x3000],
                stalled_until: Some(6000),
            }],
            in_flight: vec![Message {
                src: 1,
                dest: None,
                kind: ds_net::MsgKind::Broadcast,
                line_addr: 0x1000,
                payload_bytes: 32,
                seq: 4,
                enqueued_at: 4900,
            }],
            recent_events: Vec::new(),
        };
        let text = report.to_string();
        assert!(text.contains("deadlock at cycle 5000"));
        assert!(text.contains("bshr waits"));
        assert!(text.contains("degraded lines"));
        assert!(text.contains("chaos-stalled until 6000"));
        assert!(text.contains("in-flight messages: 1"));
    }
}
