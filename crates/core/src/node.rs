//! One DataScalar node: out-of-order core + memory side.
//!
//! The memory side implements the ESP protocol with cache
//! correspondence:
//!
//! * the **canonical cache** is updated only at commit, so its contents
//!   are a pure function of the committed prefix — identical at every
//!   node (the correspondence invariant, asserted in tests);
//! * issue-time probes consult the (commit-lagged) canonical cache plus
//!   the DCUB's in-flight lines; a probe miss starts the episode's one
//!   fetch (local read + early broadcast at the owner, BSHR wait
//!   elsewhere);
//! * at commit, the canonical access is replayed; a **false hit** (no
//!   in-flight episode, yet a commit-order miss) triggers the repair:
//!   a late (reparative) broadcast at the owner, a BSHR squash at
//!   non-owners.

use crate::bshr::{Arrival, Bshr};
use crate::config::DsConfig;
use crate::cub::Dcub;
use crate::linemap::LineMap;
use crate::pending::PendingQueue;
use crate::stats::NodeStats;
use crate::Cycle;
use ds_cpu::{ExecRecord, LoadResponse, MemSystem, OooCore, RuuTag, TraceSource};
use ds_mem::{
    AccessKind, Cache, CacheOutcome, MainMemory, NodeId, PageClass, PageTable, Tlb, Victim,
};
use ds_net::{Message, MsgKind};
use ds_obs::{EventKind, Probe as _};
use std::sync::Arc;

/// The memory side's observability probe: the ds-obs recorder when the
/// `obs` feature is on, a zero-sized no-op otherwise. Call sites below
/// record unconditionally; without the feature each call monomorphises
/// against the ZST's empty inline default and compiles to nothing.
#[cfg(feature = "obs")]
pub(crate) type NodeProbe = ds_obs::Recorder;
/// The disabled probe (ZST).
#[cfg(not(feature = "obs"))]
pub(crate) type NodeProbe = ds_obs::NoopProbe;

/// The memory side of a node (everything in Figure 5 except the CPU
/// logic).
#[derive(Debug)]
pub(crate) struct MemSide {
    id: NodeId,
    pt: Arc<PageTable>,
    canon: Cache,
    icache: Cache,
    mem: MainMemory,
    dcub: Dcub,
    bshr: Bshr,
    /// Optional data TLB; misses charge a local page-table walk.
    dtlb: Option<Tlb>,
    tlb_walk_cycles: u64,
    line_bytes: u64,
    queue_penalty: u64,
    /// Broadcasts awaiting their data-ready cycle before entering the
    /// bus queue.
    outgoing: PendingQueue,
    /// Per-line broadcast sequence numbers (the paper's supplementary
    /// tags). Sorted-vec map: probed once per broadcast and never
    /// iterated, and its order is deterministic either way.
    seq: LineMap<u64>,
    stats: NodeStats,
    /// Cycle-stamped protocol events (no-op unless built with `obs`).
    probe: NodeProbe,
    /// Commit-time correspondence auditor (observational only).
    #[cfg(feature = "audit")]
    pub(crate) audit: crate::audit::NodeAudit,
}

impl MemSide {
    fn new(id: NodeId, pt: Arc<PageTable>, config: &DsConfig) -> Self {
        let mut bshr = Bshr::new(config.bshr_entries, config.bshr_access_cycles);
        bshr.configure_timeout(config.bshr_timeout_cycles, config.bshr_retry_budget);
        MemSide {
            id,
            pt,
            canon: Cache::new(config.dcache),
            icache: Cache::new(config.icache),
            mem: MainMemory::new(config.memory),
            dcub: Dcub::new(),
            bshr,
            dtlb: config.tlb.map(Tlb::new),
            tlb_walk_cycles: config.tlb_walk_cycles,
            line_bytes: config.dcache.line_bytes,
            queue_penalty: config.queue_penalty,
            outgoing: PendingQueue::new(),
            seq: LineMap::new(),
            stats: NodeStats::default(),
            probe: NodeProbe::default(),
            #[cfg(feature = "audit")]
            audit: crate::audit::NodeAudit::default(),
        }
    }

    /// Hands the auditor one commit-order cache transition.
    #[cfg(feature = "audit")]
    fn audit_commit(
        &mut self,
        icount: u64,
        line: u64,
        store: bool,
        outcome: crate::audit::CommitOutcome,
        victim: Option<u64>,
    ) {
        self.audit.record(crate::audit::CommitEvent { icount, line, store, outcome, victim });
    }

    fn push_broadcast(&mut self, line: u64, ready: Cycle) {
        if self.pt.nodes() == 1 {
            // No peers: a degenerate single-node machine never
            // broadcasts.
            return;
        }
        let seq = self.seq.get_mut_or_default(line);
        let msg = Message {
            src: self.id,
            dest: None,
            kind: MsgKind::Broadcast,
            line_addr: line,
            payload_bytes: self.line_bytes,
            seq: *seq,
            enqueued_at: ready,
        };
        *seq += 1;
        self.stats.broadcasts_sent += 1;
        self.probe.record(ready, EventKind::BroadcastSend { line });
        self.outgoing.push(ready, msg);
    }

    /// Sends a traditional point-to-point request for `line` to its
    /// owner — the graceful-degradation fallback once a line exhausts
    /// its retransmit budget. Address-only (no payload).
    fn send_direct_request(&mut self, line: u64, owner: NodeId, now: Cycle) {
        let ready = now + self.queue_penalty;
        self.outgoing.push(
            ready,
            Message {
                src: self.id,
                dest: Some(owner),
                kind: MsgKind::Request,
                line_addr: line,
                payload_bytes: 0,
                seq: 0,
                enqueued_at: ready,
            },
        );
    }

    fn handle_victim(&mut self, victim: Option<Victim>, now: Cycle) {
        let Some(v) = victim else { return };
        if !v.dirty {
            return;
        }
        if self.pt.is_local(v.line_addr, self.id) {
            // Write-back completes in local memory (fire-and-forget:
            // it occupies a bank but blocks nothing).
            self.mem.access(v.line_addr, self.line_bytes, now);
            self.stats.writebacks_local += 1;
        } else {
            // ESP: another node owns the line and generates the same
            // value locally; the write-back is dropped (§3.1).
            self.stats.writes_dropped += 1;
        }
    }

    /// Repairs a commit-time miss that had no in-flight episode: a
    /// broadcast at the owner, a squash at non-owners. `reparative` is
    /// true for load false hits (counted as Table 3's late broadcasts)
    /// and false for write-allocate store fills, which are ordinary
    /// episode fills that merely happen at commit.
    fn fill_repair(&mut self, line: u64, now: Cycle, reparative: bool) {
        if reparative {
            self.probe.record(now, EventKind::FalseHitRepair { line });
        }
        match self.pt.classify(line) {
            PageClass::Replicated => {
                self.mem.access(line, self.line_bytes, now);
            }
            PageClass::Owned(o) if o == self.id => {
                self.mem.access(line, self.line_bytes, now);
                if reparative {
                    self.stats.late_broadcasts += 1;
                }
                self.push_broadcast(line, now + self.queue_penalty);
            }
            PageClass::Owned(_) => {
                self.bshr.post_squash(line);
            }
        }
    }

    /// Records a DCUB insertion (occupancy sampled after the push).
    fn record_dcub_push(&mut self, line: u64, now: Cycle) {
        self.probe
            .record(now, EventKind::DcubPush { line, occ: self.dcub.occupancy() as u32 });
    }

    /// Records a DCUB removal (occupancy sampled after the drain).
    fn record_dcub_drain(&mut self, line: u64, now: Cycle) {
        self.probe
            .record(now, EventKind::DcubDrain { line, occ: self.dcub.occupancy() as u32 });
    }
}

impl MemSystem for MemSide {
    fn load_issued(&mut self, rec: &ExecRecord, now: Cycle, tag: RuuTag) -> (LoadResponse, bool) {
        let addr = rec.mem_addr;
        let line = self.canon.line_addr(addr);
        self.stats.loads_issued += 1;
        // Address translation: a D-TLB miss pays a local page-table
        // walk before the cache can even be indexed.
        let now = match &mut self.dtlb {
            Some(tlb) => ds_mem::translate(tlb, addr, now, self.tlb_walk_cycles),
            None => now,
        };
        // 1. Merge with an in-flight episode (false-miss normalisation).
        if let Some(e) = self.dcub.get(line) {
            return match e.ready_at {
                Some(r) => (LoadResponse::Ready(r.max(now + 1)), false),
                None => {
                    self.bshr.join_wait(line, tag);
                    (LoadResponse::Pending, false)
                }
            };
        }
        // 2. Commit-lagged canonical cache (LRU untouched at issue).
        if self.canon.probe(addr) {
            self.stats.issue_hits += 1;
            return (LoadResponse::Ready(now + 1), true);
        }
        // 3. Start the episode's one fetch.
        match self.pt.classify(addr) {
            PageClass::Replicated => {
                self.stats.local_misses += 1;
                let done = self.mem.access(line, self.line_bytes, now);
                self.dcub.insert(line, Some(done), false);
                self.record_dcub_push(line, now);
                (LoadResponse::Ready(done), false)
            }
            PageClass::Owned(o) if o == self.id => {
                self.stats.local_misses += 1;
                let done = self.mem.access(line, self.line_bytes, now);
                self.push_broadcast(line, done + self.queue_penalty);
                self.dcub.insert(line, Some(done), true);
                self.record_dcub_push(line, now);
                (LoadResponse::Ready(done), false)
            }
            PageClass::Owned(owner) => {
                self.stats.remote_accesses += 1;
                match self.bshr.request(line, tag, now) {
                    Some(ready) => {
                        self.probe.record(
                            now,
                            EventKind::BshrFoundBuffered {
                                line,
                                occ: self.bshr.occupancy() as u32,
                            },
                        );
                        self.dcub.insert(line, Some(ready), false);
                        self.record_dcub_push(line, now);
                        (LoadResponse::Ready(ready), false)
                    }
                    None => {
                        self.probe.record(
                            now,
                            EventKind::BshrAllocate { line, occ: self.bshr.occupancy() as u32 },
                        );
                        // A degraded line no longer trusts the owner's
                        // broadcast: ask for the data explicitly, as a
                        // traditional machine would.
                        if self.bshr.is_degraded(line) {
                            self.stats.degraded_requests += 1;
                            self.send_direct_request(line, owner, now);
                        }
                        self.dcub.insert(line, None, false);
                        self.record_dcub_push(line, now);
                        (LoadResponse::Pending, false)
                    }
                }
            }
        }
    }

    fn mem_committed(&mut self, rec: &ExecRecord, issue_hit: Option<bool>, now: Cycle) {
        let addr = rec.mem_addr;
        let line = self.canon.line_addr(addr);
        if rec.is_store() {
            match self.canon.access(addr, AccessKind::Write) {
                CacheOutcome::Hit => {
                    #[cfg(feature = "audit")]
                    self.audit_commit(rec.icount, line, true, crate::audit::CommitOutcome::Hit, None);
                }
                CacheOutcome::Miss { allocated: false, .. } => {
                    #[cfg(feature = "audit")]
                    self.audit_commit(
                        rec.icount,
                        line,
                        true,
                        crate::audit::CommitOutcome::MissBypassed,
                        None,
                    );
                    // Write-no-allocate: the store writes through to the
                    // owner's memory and is dropped everywhere else —
                    // created values never cross the interconnect (§3.1).
                    if self.pt.is_local(addr, self.id) {
                        self.mem.access(addr, rec.mem_bytes, now);
                        self.stats.writethroughs_local += 1;
                    } else {
                        self.stats.writes_dropped += 1;
                    }
                }
                CacheOutcome::Miss { allocated: true, victim } => {
                    // Write-allocate configurations: the fill behaves
                    // like a repaired miss.
                    #[cfg(feature = "audit")]
                    self.audit_commit(
                        rec.icount,
                        line,
                        true,
                        crate::audit::CommitOutcome::MissAllocated,
                        victim.as_ref().map(|v| v.line_addr),
                    );
                    self.handle_victim(victim, now);
                    if self.dcub.remove(line).is_none() {
                        self.fill_repair(line, now, false);
                    } else {
                        self.record_dcub_drain(line, now);
                    }
                }
            }
            self.stats.stores_committed += 1;
            self.stats.dcub_max = self.stats.dcub_max.max(self.dcub.max_occupancy());
            return;
        }
        // Load: replay in commit order against the canonical cache.
        match self.canon.access(addr, AccessKind::Read) {
            CacheOutcome::Hit => {
                #[cfg(feature = "audit")]
                self.audit_commit(rec.icount, line, false, crate::audit::CommitOutcome::Hit, None);
                if issue_hit == Some(false) {
                    // Miss at issue, hit in commit order: a false miss,
                    // already normalised by the DCUB merge.
                    self.stats.false_misses += 1;
                }
            }
            CacheOutcome::Miss { victim, .. } => {
                #[cfg(feature = "audit")]
                self.audit_commit(
                    rec.icount,
                    line,
                    false,
                    crate::audit::CommitOutcome::MissAllocated,
                    victim.as_ref().map(|v| v.line_addr),
                );
                self.handle_victim(victim, now);
                if self.dcub.remove(line).is_some() {
                    // Normal episode install: the issue-time fetch (and
                    // any broadcast/wait) pairs with this canonical miss.
                    self.record_dcub_drain(line, now);
                } else {
                    // Hit at issue, miss in commit order: false hit.
                    if issue_hit == Some(true) {
                        self.stats.false_hits += 1;
                    }
                    self.fill_repair(line, now, true);
                }
            }
        }
        self.stats.dcub_max = self.stats.dcub_max.max(self.dcub.max_occupancy());
    }

    fn fetch_line(&mut self, pc: u64, now: Cycle) -> Cycle {
        // Text is replicated at every node (§4.2), so instruction
        // fetches always complete locally.
        let line = self.icache.line_addr(pc);
        match self.icache.access(pc, AccessKind::Read) {
            CacheOutcome::Hit => now,
            CacheOutcome::Miss { .. } => self.mem.access(line, self.line_bytes, now),
        }
    }
}

/// One DataScalar node (CPU + memory side of Figure 5).
#[derive(Debug)]
pub struct Node {
    pub(crate) core: OooCore,
    pub(crate) ms: MemSide,
    /// Chaos tick stalls scheduled for this node, as half-open
    /// `[start, end)` cycle windows sorted by start. Empty (the common
    /// case) costs one slice-length check per cycle.
    stalls: Vec<(Cycle, Cycle)>,
    /// Cumulative `CycleAccount` snapshots for the Perfetto stall
    /// counter track, taken every [`SAMPLE_INTERVAL`] cycles.
    #[cfg(feature = "obs")]
    samples: Vec<(Cycle, ds_obs::CycleAccount)>,
    /// Interval time-series telemetry: counter deltas closed at the
    /// same [`SAMPLE_INTERVAL`] boundaries the Perfetto snapshots use.
    #[cfg(feature = "obs")]
    timeline: ds_obs::IntervalRing,
}

/// Cycles between stall-counter snapshots and timeline interval
/// boundaries — one shared cadence for both samplers (hoisted to
/// ds-obs so they can never drift apart).
#[cfg(feature = "obs")]
use ds_obs::SAMPLE_INTERVAL;

impl Node {
    pub(crate) fn new(id: NodeId, pt: Arc<PageTable>, config: &DsConfig) -> Self {
        #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
        let mut core = OooCore::new(config.core, config.icache.line_bytes);
        #[cfg(feature = "obs")]
        core.set_crit_window_capacity(config.crit_window_capacity);
        let mut stalls: Vec<(Cycle, Cycle)> = config
            .fault_plan
            .stalls
            .iter()
            .filter(|s| s.node == id)
            .map(|s| (s.at, s.at.saturating_add(s.cycles)))
            .collect();
        stalls.sort_unstable();
        Node {
            core,
            ms: MemSide::new(id, pt, config),
            stalls,
            #[cfg(feature = "obs")]
            samples: Vec::with_capacity(256),
            #[cfg(feature = "obs")]
            timeline: ds_obs::IntervalRing::default(),
        }
    }

    /// `Some(end)` when a chaos stall covers cycle `now` — the node's
    /// tick is suppressed until `end`. Hot path: the schedule is empty
    /// in fault-free runs, so this is one length check.
    #[inline]
    pub(crate) fn stalled_until(&self, now: Cycle) -> Option<Cycle> {
        self.stalls
            .iter()
            .find(|&&(start, end)| start <= now && now < end)
            .map(|&(_, end)| end)
    }

    /// Advances the node one cycle. A chaos-stalled cycle suppresses
    /// the tick entirely (the cycle is still charged by the caller).
    pub(crate) fn step(&mut self, trace: &mut TraceSource, now: Cycle) -> Result<(), ds_cpu::ExecError> {
        if !self.stalls.is_empty() && self.stalled_until(now).is_some() {
            return Ok(());
        }
        self.core.step(&mut self.ms, trace, now)
    }

    /// Advances the node one cycle against a shared read-only trace
    /// window (the parallel engine pre-extends it before fanning out).
    pub(crate) fn step_shared(
        &mut self,
        trace: &TraceSource,
        now: Cycle,
    ) -> Result<(), ds_cpu::ExecError> {
        if !self.stalls.is_empty() && self.stalled_until(now).is_some() {
            return Ok(());
        }
        let mut feed = trace.ready_window();
        self.core.step(&mut self.ms, &mut feed, now)
    }

    /// Earliest future cycle at which this node's state can change: the
    /// core's own horizon, the first cycle a queued broadcast becomes
    /// bus-ready, the nearest BSHR retransmit deadline, and the nearest
    /// chaos-stall boundary (start or release — an event horizon must
    /// never skip past either edge). Conservative (never later than the
    /// true next change), so skipping to the system-wide minimum is
    /// always safe.
    pub(crate) fn next_event(&self, now: Cycle) -> Cycle {
        let mut horizon = self.core.next_event(now);
        if let Some(ready) = self.ms.outgoing.next_ready() {
            horizon = horizon.min(ready.max(now + 1));
        }
        if let Some(deadline) = self.ms.bshr.next_timeout() {
            horizon = horizon.min(deadline.max(now + 1));
        }
        for &(start, end) in &self.stalls {
            if start > now {
                horizon = horizon.min(start);
                break;
            }
            if end > now {
                horizon = horizon.min(end);
            }
        }
        horizon
    }

    /// Batch-advances the node from cycle `now` to `target`, applying
    /// exactly the side effects the naive loop's idle iterations over
    /// `(now, target)` would have (stall counters; nothing else — the
    /// skipped range is quiescent by construction).
    pub(crate) fn advance_to(&mut self, now: Cycle, target: Cycle) {
        if self.stalls.is_empty() {
            self.core.advance_to(now, target);
            return;
        }
        // The naive loop suppresses the core tick inside chaos-stall
        // windows (`step` returns before `core.step`), so the batch
        // bookkeeping must leave those sub-ranges uncharged too.
        let mut from = now + 1;
        for &(start, end) in &self.stalls {
            if end <= from {
                continue;
            }
            if start >= target {
                break;
            }
            let chunk_end = start.min(target).max(from);
            if chunk_end > from {
                self.core.advance_to(from - 1, chunk_end);
            }
            from = from.max(end);
            if from >= target {
                return;
            }
        }
        if target > from {
            self.core.advance_to(from - 1, target);
        }
    }

    /// Exclusive upper bound on the trace indices the next `step` can
    /// peek (parallel pre-extension hint); `None` when fetch cannot run.
    pub(crate) fn prefetch_bound(&self, now: Cycle) -> Option<u64> {
        self.core.prefetch_bound(now)
    }

    /// Furthest trace index (exclusive) this node's fetch has peeked.
    pub(crate) fn peek_end(&self) -> u64 {
        self.core.peek_end()
    }

    /// Removes and returns the next broadcast whose data is ready by
    /// `now` (in `(ready, seq)` order), or `None` when drained.
    pub(crate) fn next_outgoing(&mut self, now: Cycle) -> Option<Message> {
        self.ms.outgoing.pop_due(now)
    }

    /// A message arrived from the interconnect: an ESP broadcast in the
    /// fault-free protocol, or one of the ds-chaos hardening kinds
    /// (retransmit requests, degraded-mode requests and responses).
    pub(crate) fn deliver(&mut self, msg: &Message, now: Cycle) {
        let line = msg.line_addr;
        match msg.kind {
            MsgKind::Broadcast => {
                self.ms.probe.record(
                    now,
                    EventKind::BroadcastArrive {
                        line,
                        latency: now.saturating_sub(msg.enqueued_at),
                    },
                );
                match self.ms.bshr.on_arrival(line, now) {
                    Arrival::Completed(waiters) => {
                        self.ms.probe.record(
                            now,
                            EventKind::BshrFill {
                                line,
                                waiters: waiters.len() as u32,
                                occ: self.ms.bshr.occupancy() as u32,
                            },
                        );
                        if let Some(&(_, ready)) = waiters.first() {
                            self.ms.dcub.mark_ready(line, ready);
                        }
                        for (tag, ready) in waiters {
                            // `enqueued_at` is the owner's send-queue
                            // cycle: tagging the fill with it lets the
                            // critical-path walk measure the broadcast
                            // end-to-end.
                            self.core.complete_load_from(tag, ready, line, msg.enqueued_at);
                        }
                    }
                    Arrival::Squashed => {
                        self.ms.probe.record(
                            now,
                            EventKind::BshrSquash { line, occ: self.ms.bshr.occupancy() as u32 },
                        );
                    }
                    Arrival::Buffered => {}
                }
            }
            MsgKind::RetransmitReq => {
                // Only the line's owner can repair a lost broadcast;
                // everyone else hears the request and ignores it (their
                // own wait, if any, is answered by the re-broadcast).
                if self.ms.pt.classify(line) == PageClass::Owned(self.ms.id) {
                    let done = self.ms.mem.access(line, self.ms.line_bytes, now);
                    self.ms.stats.retransmit_rebroadcasts += 1;
                    self.ms.probe.record(now, EventKind::RetransmitRebroadcast { line });
                    self.ms.push_broadcast(line, done + self.ms.queue_penalty);
                }
            }
            MsgKind::Request => {
                // Degraded-mode direct request: serve it like a
                // traditional memory, point-to-point.
                debug_assert_eq!(self.ms.pt.classify(line), PageClass::Owned(self.ms.id));
                let done = self.ms.mem.access(line, self.ms.line_bytes, now);
                self.ms.stats.degraded_responses += 1;
                let ready = done + self.ms.queue_penalty;
                self.ms.outgoing.push(
                    ready,
                    Message {
                        src: self.ms.id,
                        dest: Some(msg.src),
                        kind: MsgKind::Response,
                        line_addr: line,
                        payload_bytes: self.ms.line_bytes,
                        seq: 0,
                        enqueued_at: ready,
                    },
                );
            }
            MsgKind::Response => {
                // Degraded-mode fill. A duplicate (the original
                // broadcast raced the retransmit path) finds no wait
                // and is dropped.
                if let Some(waiters) = self.ms.bshr.fill_direct(line, now) {
                    self.ms.probe.record(
                        now,
                        EventKind::BshrFill {
                            line,
                            waiters: waiters.len() as u32,
                            occ: self.ms.bshr.occupancy() as u32,
                        },
                    );
                    if let Some(&(_, ready)) = waiters.first() {
                        self.ms.dcub.mark_ready(line, ready);
                    }
                    for (tag, ready) in waiters {
                        self.core.complete_load_from(tag, ready, line, msg.enqueued_at);
                    }
                }
            }
            MsgKind::WriteBack | MsgKind::WriteThrough => {
                debug_assert!(false, "traditional-only message kind reached a DataScalar node");
            }
        }
    }

    /// Drains expired BSHR waits into the escalation ladder: timeout →
    /// retransmit request (broadcast), budget exhausted → per-line
    /// degradation to direct request–response. Called once per cycle by
    /// the system loop, and only when a timeout is configured — the
    /// fault-free hot path never enters. The drain order (lowest line
    /// first) is deterministic.
    pub(crate) fn poll_faults(&mut self, now: Cycle) {
        while let Some(e) = self.ms.bshr.take_expired(now) {
            let PageClass::Owned(owner) = self.ms.pt.classify(e.line) else {
                debug_assert!(false, "BSHR wait on a non-remote line");
                continue;
            };
            debug_assert_ne!(owner, self.ms.id);
            if e.newly_degraded {
                self.ms.probe.record(now, EventKind::LineDegraded { line: e.line });
            }
            if e.degraded {
                self.ms.stats.degraded_requests += 1;
                self.ms.send_direct_request(e.line, owner, now);
            } else {
                self.ms.stats.retransmit_requests += 1;
                self.ms.probe.record(
                    now,
                    EventKind::RetransmitRequest { line: e.line, retry: e.retries },
                );
                let ready = now + self.ms.queue_penalty;
                self.ms.outgoing.push(
                    ready,
                    Message {
                        src: self.ms.id,
                        dest: None,
                        kind: MsgKind::RetransmitReq,
                        line_addr: e.line,
                        payload_bytes: 0,
                        seq: 0,
                        enqueued_at: ready,
                    },
                );
            }
        }
    }

    /// Assembles this node's slice of a [`crate::watchdog::DeadlockReport`].
    /// Cold path — only runs when the watchdog has already tripped.
    pub(crate) fn deadlock_state(&self, now: Cycle) -> crate::watchdog::NodeDeadlockState {
        crate::watchdog::NodeDeadlockState {
            node: self.ms.id,
            committed: self.core.committed(),
            oldest: self.core.oldest_entry(),
            bshr_waits: self.ms.bshr.wait_lines(),
            bshr_buffered: self.ms.bshr.buffered_lines(),
            pending_squashes: self.ms.bshr.squash_lines(),
            degraded_lines: self.ms.bshr.degraded_lines(),
            stalled_until: self.stalled_until(now),
        }
    }

    /// True once the node has committed the whole program.
    pub fn is_done(&self) -> bool {
        self.core.is_done()
    }

    /// Instructions committed.
    pub fn committed(&self) -> u64 {
        self.core.committed()
    }

    /// This node's trace cursor (for trace trimming).
    pub(crate) fn fetch_cursor(&self) -> u64 {
        self.core.fetch_cursor()
    }

    /// True when no broadcast is waiting for its data-ready cycle.
    pub(crate) fn outgoing_is_empty(&self) -> bool {
        self.ms.outgoing.is_empty()
    }

    /// The memory side's recorded protocol events (instrumented builds
    /// only).
    #[cfg(feature = "obs")]
    pub fn events(&self) -> &ds_obs::EventRing {
        self.ms.probe.ring()
    }

    /// The core's recorded commit events (instrumented builds only).
    #[cfg(feature = "obs")]
    pub fn core_events(&self) -> &ds_obs::EventRing {
        self.core.events()
    }

    /// The core's critical-path window of retired-instruction graph
    /// nodes (instrumented builds only).
    #[cfg(feature = "obs")]
    pub fn crit_window(&self) -> &ds_obs::CritWindow {
        self.core.crit_window()
    }

    /// Classifies the node's stall state at `now` into the bucket it
    /// should be charged to, plus the PC to attribute the wait to for
    /// the PC-profiled buckets. Pure (no counters touched), so the
    /// per-cycle and batch charge paths share one classification.
    #[cfg(feature = "obs")]
    fn classify_stall(
        &self,
        now: Cycle,
        bus_busy: bool,
    ) -> (ds_obs::StallBucket, Option<(u64, ds_obs::PcStallKind)>) {
        use ds_cpu::CoreStall;
        use ds_obs::{PcStallKind, StallBucket};
        match self.core.stall_class(now) {
            CoreStall::Committing => (StallBucket::Committing, None),
            CoreStall::RemoteMemWait { pc } => {
                // Refine the remote wait: a pending squash means a
                // false-hit repair is in flight (commit-repair); a busy
                // bus means the wait is contention, not pure broadcast
                // latency. Only the residual pure wait is attributed to
                // the PC, so per-PC cycles sum to the bshr-wait-remote
                // bucket exactly.
                if self.ms.bshr.has_pending_squashes() {
                    (StallBucket::CommitRepair, None)
                } else if self.ms.bshr.has_retrying_waits() {
                    // A wait past its first timeout: the cycle belongs
                    // to fault recovery (retransmit or degraded-mode
                    // request), not the healthy broadcast path.
                    (StallBucket::RetryWait, None)
                } else if bus_busy {
                    (StallBucket::BusContentionWait, None)
                } else {
                    (StallBucket::BshrWaitRemote, Some((pc, PcStallKind::RemoteWait)))
                }
            }
            CoreStall::LocalMemWait { pc } => {
                (StallBucket::LocalMemWait, Some((pc, PcStallKind::LocalWait)))
            }
            CoreStall::RuuFull => (StallBucket::RuuFull, None),
            CoreStall::LsqFull => (StallBucket::LsqFull, None),
            CoreStall::SquashReplay => (StallBucket::SquashReplay, None),
            CoreStall::FetchStall => (StallBucket::FetchStall, None),
            CoreStall::Idle => (StallBucket::Idle, None),
        }
    }

    /// Charges `now` to exactly one stall bucket (top-down cycle
    /// accounting). Called once per simulated cycle by `DsSystem::run`,
    /// after the node stepped; `bus_busy` is whether the interconnect
    /// was occupied this cycle. Hot path: one classification, one array
    /// increment, no allocation.
    #[cfg(feature = "obs")]
    pub(crate) fn charge_cycle(&mut self, now: Cycle, bus_busy: bool) {
        if now.is_multiple_of(SAMPLE_INTERVAL) {
            // Snapshot *before* charging: the sample at cycle C covers
            // charges for cycles [0, C). The timeline interval closes
            // at the same boundary with the same convention (cycle C's
            // charge and occupancy belong to the new interval; the
            // cumulative counters are read after this cycle's step).
            self.samples.push((now, *self.ms.probe.account()));
            self.timeline.sample_close(
                now,
                self.core.committed(),
                self.ms.stats.broadcasts_sent,
                self.ms.bshr.stats().arrivals,
                self.ms.probe.account(),
            );
        }
        self.timeline.note_occ(self.ms.bshr.occupancy() as u64);
        let (bucket, pc) = self.classify_stall(now, bus_busy);
        if let Some((pc, kind)) = pc {
            self.ms.probe.charge_pc(pc, kind);
        }
        self.ms.probe.charge(bucket);
    }

    /// Charges `n` cycles to `bucket` (and its PC attribution) at once.
    #[cfg(feature = "obs")]
    fn charge_block(
        &mut self,
        bucket: ds_obs::StallBucket,
        pc: Option<(u64, ds_obs::PcStallKind)>,
        n: u64,
    ) {
        if n == 0 {
            return;
        }
        if let Some((pc, kind)) = pc {
            self.ms.probe.charge_pc_many(pc, kind, n);
        }
        self.ms.probe.charge_many(bucket, n);
    }

    /// Charges the `count` cycles `[start, start + count)` skipped by an
    /// event-horizon advance, exactly as `count` per-cycle
    /// [`Node::charge_cycle`] calls would have. A skipped range is
    /// quiescent by construction — the commit head, BSHR and fetch
    /// stall all hold still, and the interconnect skipped too — so one
    /// classification at `start` covers the whole range; snapshot
    /// boundaries inside the range are honoured one by one.
    #[cfg(feature = "obs")]
    pub(crate) fn charge_skipped(&mut self, start: Cycle, count: u64, bus_busy: bool) {
        #[cfg(any(debug_assertions, feature = "audit"))]
        let before = *self.ms.probe.account();
        let (bucket, pc) = self.classify_stall(start, bus_busy);
        // A skipped range is quiescent: every counter the timeline
        // samples (commits, sends, arrivals, BSHR occupancy) is frozen
        // at its value after the last real step, which is exactly what
        // the naive loop would read at each boundary inside the range.
        let committed = self.core.committed();
        let sends = self.ms.stats.broadcasts_sent;
        let arrives = self.ms.bshr.stats().arrivals;
        let occ = self.ms.bshr.occupancy() as u64;
        let end = start + count;
        let mut from = start;
        let mut boundary = start.next_multiple_of(SAMPLE_INTERVAL);
        while boundary < end {
            // The naive loop snapshots at each SAMPLE_INTERVAL multiple
            // *before* charging that cycle: charge up to the boundary,
            // snapshot, continue. The per-cycle loop would also have
            // noted the (frozen) occupancy once per skipped cycle —
            // once per sub-interval reaches the same high-water mark.
            if boundary > from {
                self.timeline.note_occ(occ);
                self.timeline.note_skipped(boundary - from);
            }
            self.charge_block(bucket, pc, boundary - from);
            self.samples.push((boundary, *self.ms.probe.account()));
            self.timeline.sample_close(boundary, committed, sends, arrives, self.ms.probe.account());
            from = boundary;
            boundary += SAMPLE_INTERVAL;
        }
        if end > from {
            self.timeline.note_occ(occ);
            self.timeline.note_skipped(end - from);
        }
        self.charge_block(bucket, pc, end - from);
        // Skip/charge parity: a horizon advance of `count` cycles must
        // charge exactly `count` cycles, all into the one bucket the
        // quiescent range classifies to.
        #[cfg(any(debug_assertions, feature = "audit"))]
        {
            let after = self.ms.probe.account();
            assert_eq!(
                after.total() - before.total(),
                count,
                "horizon skip charged a different number of cycles than it advanced"
            );
            assert_eq!(
                after.get(bucket) - before.get(bucket),
                count,
                "horizon skip leaked cycles outside its stall bucket"
            );
        }
    }

    /// This node's cycle ledger (instrumented builds only).
    #[cfg(feature = "obs")]
    pub fn cycle_account(&self) -> &ds_obs::CycleAccount {
        self.ms.probe.account()
    }

    /// This node's per-PC memory-wait profile (instrumented builds
    /// only).
    #[cfg(feature = "obs")]
    pub fn pc_profile(&self) -> &ds_obs::PcProfile {
        self.ms.probe.pc_profile()
    }

    /// Cumulative account snapshots for the stall counter track.
    #[cfg(feature = "obs")]
    pub(crate) fn samples(&self) -> &[(Cycle, ds_obs::CycleAccount)] {
        &self.samples
    }

    /// Closes the final (possibly partial) timeline interval at the
    /// run's end cycle. Called once by `DsSystem::finish_run`; a run
    /// ending exactly on an already-closed boundary is a no-op.
    #[cfg(feature = "obs")]
    pub(crate) fn close_timeline(&mut self, end: Cycle) {
        self.timeline.sample_close(
            end,
            self.core.committed(),
            self.ms.stats.broadcasts_sent,
            self.ms.bshr.stats().arrivals,
            self.ms.probe.account(),
        );
    }

    /// This node's interval timeline (instrumented builds only).
    #[cfg(feature = "obs")]
    pub fn timeline(&self) -> &ds_obs::IntervalRing {
        &self.timeline
    }

    /// Snapshot of this node's statistics.
    pub fn stats(&self) -> NodeStats {
        let mut s = self.ms.stats;
        s.bshr = *self.ms.bshr.stats();
        s.core = *self.core.stats();
        s.dcub_max = s.dcub_max.max(self.ms.dcub.max_occupancy());
        s
    }

    /// The canonical (commit-order) D-cache contents, for
    /// correspondence checking: sorted `(line, dirty)` pairs.
    pub fn canonical_cache_lines(&self) -> Vec<(u64, bool)> {
        self.ms.canon.resident()
    }

    /// Whether the BSHR holds no waits, buffers or pending squashes.
    #[cfg(feature = "audit")]
    pub(crate) fn bshr_is_quiescent(&self) -> bool {
        self.ms.bshr.is_quiescent()
    }

    /// In-flight DCUB entries.
    #[cfg(feature = "audit")]
    pub(crate) fn dcub_occupancy(&self) -> usize {
        self.ms.dcub.occupancy()
    }
}
