//! The Data Commit Update Buffer (DCUB).
//!
//! Under the correspondence protocol (§4.1), cache tags are updated
//! only at commit. Between a line's fetch (at some load's issue) and
//! its installation (at the episode's first canonical miss commit), the
//! line lives in the DCUB: loads that issue in that window are serviced
//! by the DCUB entry rather than generating a second miss — which is
//! also how **false misses** are normalised to one miss per
//! line-residency episode ("any sequence of accesses to the same line
//! will generate only one miss").

use crate::linemap::LineMap;
use crate::Cycle;

/// State of one in-flight line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DcubEntry {
    /// When the data is (or will be) available locally; `None` while a
    /// remote broadcast is still outstanding.
    pub ready_at: Option<Cycle>,
    /// Owner side: whether an (early) broadcast has been sent for this
    /// episode.
    pub broadcast_sent: bool,
}

/// The DCUB of one node.
#[derive(Debug, Clone, Default)]
pub struct Dcub {
    lines: LineMap<DcubEntry>,
    /// High-water mark of simultaneous entries.
    max_occupancy: usize,
}

impl Dcub {
    /// An empty DCUB.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entry for `line`, if one is in flight.
    pub fn get(&self, line: u64) -> Option<&DcubEntry> {
        self.lines.get(line)
    }

    /// Registers a fetched line.
    ///
    /// # Panics
    ///
    /// Panics if the line is already in flight (callers must merge via
    /// [`Dcub::get`] first).
    pub fn insert(&mut self, line: u64, ready_at: Option<Cycle>, broadcast_sent: bool) {
        let prev = self.lines.insert(line, DcubEntry { ready_at, broadcast_sent });
        assert!(prev.is_none(), "line {line:#x} already in flight");
        self.max_occupancy = self.max_occupancy.max(self.lines.len());
    }

    /// Marks a pending line's data as available at `ready`.
    pub fn mark_ready(&mut self, line: u64, ready: Cycle) {
        if let Some(e) = self.lines.get_mut(line) {
            if e.ready_at.is_none() {
                e.ready_at = Some(ready);
            }
        }
    }

    /// Removes the entry at the episode's installation commit.
    pub fn remove(&mut self, line: u64) -> Option<DcubEntry> {
        self.lines.remove(line)
    }

    /// Entries currently in flight.
    pub fn occupancy(&self) -> usize {
        self.lines.len()
    }

    /// High-water mark of simultaneous entries.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut d = Dcub::new();
        d.insert(0x100, Some(42), true);
        assert_eq!(d.get(0x100), Some(&DcubEntry { ready_at: Some(42), broadcast_sent: true }));
        assert_eq!(d.remove(0x100).unwrap().ready_at, Some(42));
        assert_eq!(d.get(0x100), None);
    }

    #[test]
    fn mark_ready_fills_pending_only() {
        let mut d = Dcub::new();
        d.insert(0x100, None, false);
        d.mark_ready(0x100, 99);
        assert_eq!(d.get(0x100).unwrap().ready_at, Some(99));
        // Already-ready entries keep their original time.
        d.mark_ready(0x100, 200);
        assert_eq!(d.get(0x100).unwrap().ready_at, Some(99));
        // Unknown lines are ignored.
        d.mark_ready(0x999, 1);
        assert_eq!(d.get(0x999), None);
    }

    #[test]
    fn occupancy_high_water() {
        let mut d = Dcub::new();
        d.insert(0x0, Some(1), false);
        d.insert(0x40, Some(1), false);
        d.remove(0x0);
        assert_eq!(d.occupancy(), 1);
        assert_eq!(d.max_occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_insert_panics() {
        let mut d = Dcub::new();
        d.insert(0x100, None, false);
        d.insert(0x100, None, false);
    }
}
