//! Commit-time correspondence auditor (`--features audit`).
//!
//! The static linter (`crates/lint`) keeps nondeterminism out of the
//! source; this module is its dynamic counterpart, asserting the
//! correspondence protocol itself (docs/protocol.md §3–§4) while a
//! DataScalar system runs:
//!
//! * **Identical canonical streams.** The canonical cache is a pure
//!   function of the committed instruction prefix, so the k-th
//!   mem-commit at every node must produce the *same* event — same
//!   instruction, same line, same hit/miss outcome, same victim. Each
//!   node's events are checked positionally against a shared reference
//!   log as the run progresses; any divergence is caught at the first
//!   offending commit rather than as an end-of-run cache diff.
//! * **One miss per line-residency episode.** A per-node residency
//!   model (a mirror of the canonical tag array driven only by the
//!   event stream) asserts that hits land on resident lines, misses on
//!   non-resident ones, and evictions name a resident victim — i.e.
//!   false misses really were coalesced by the DCUB.
//! * **Every broadcast consumed exactly once per non-owner.** Checked
//!   at end of run by `DsSystem`: send/arrival ledgers balance and the
//!   BSHRs and DCUBs are empty (see `assert_audit_invariants`).
//!
//! Everything here is observational: the auditor sees copies of events
//! the engine already produced and never feeds anything back, so an
//! audit build commits the same cycles and stats as a normal one.

use std::collections::{BTreeSet, VecDeque};

/// How a commit-order access resolved against the canonical cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The line was resident.
    Hit,
    /// The line was installed (and `victim`, if any, evicted).
    MissAllocated,
    /// Write-no-allocate miss: the store bypassed the cache.
    MissBypassed,
}

/// One mem-op's canonical-cache transition, recorded at commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitEvent {
    /// Committing instruction's index in the dynamic stream.
    pub icount: u64,
    /// Line address accessed.
    pub line: u64,
    /// Store (true) or load (false).
    pub store: bool,
    /// Tag-array transition.
    pub outcome: CommitOutcome,
    /// Line evicted by a `MissAllocated`, if the set was full.
    pub victim: Option<u64>,
}

/// Per-node auditor: a residency mirror of the canonical tag array.
#[derive(Debug, Default)]
pub struct NodeAudit {
    resident: BTreeSet<u64>,
    /// Events awaiting absorption into the system-level reference log.
    pub(crate) pending: VecDeque<CommitEvent>,
    checks: u64,
}

impl NodeAudit {
    /// Validates one commit event against the residency model and
    /// queues it for cross-node comparison.
    ///
    /// # Panics
    ///
    /// Panics when the event stream implies a protocol violation: a
    /// second miss inside one residency episode, a hit on a
    /// non-resident line, or an eviction of a line that was never
    /// installed.
    pub(crate) fn record(&mut self, ev: CommitEvent) {
        match ev.outcome {
            CommitOutcome::Hit => {
                assert!(
                    self.resident.contains(&ev.line),
                    "audit: commit #{} hit line {:#x} which the canonical tag model \
                     says is not resident",
                    ev.icount,
                    ev.line
                );
            }
            CommitOutcome::MissAllocated => {
                assert!(
                    !self.resident.contains(&ev.line),
                    "audit: commit #{} missed line {:#x} inside an existing residency \
                     episode (false miss escaped DCUB coalescing)",
                    ev.icount,
                    ev.line
                );
                if let Some(v) = ev.victim {
                    assert!(
                        self.resident.remove(&v),
                        "audit: commit #{} evicted line {:#x} which was never installed",
                        ev.icount,
                        v
                    );
                }
                self.resident.insert(ev.line);
            }
            CommitOutcome::MissBypassed => {
                assert!(
                    !self.resident.contains(&ev.line),
                    "audit: commit #{} write-bypassed line {:#x} which is resident \
                     (should have been a write hit)",
                    ev.icount,
                    ev.line
                );
            }
        }
        self.checks += 1;
        self.pending.push_back(ev);
    }

    /// Assertions passed so far.
    pub(crate) fn checks(&self) -> u64 {
        self.checks
    }
}

/// System-level auditor: the shared reference log every node's commit
/// stream is compared against.
#[derive(Debug)]
pub struct SystemAudit {
    /// Events not yet confirmed by every node. `log[0]` is global
    /// commit index `base`.
    log: VecDeque<CommitEvent>,
    base: u64,
    /// Per-node count of absorbed events.
    pos: Vec<u64>,
    checks: u64,
}

impl SystemAudit {
    /// Auditor for an `n`-node system.
    pub(crate) fn new(n: usize) -> Self {
        SystemAudit { log: VecDeque::new(), base: 0, pos: vec![0; n], checks: 0 }
    }

    /// Checks `node`'s next commit event against the reference log
    /// (extending the log if this node is the furthest along).
    ///
    /// # Panics
    ///
    /// Panics when a node's k-th mem-commit differs from the k-th entry
    /// of the reference stream — the canonical caches have diverged.
    pub(crate) fn absorb(&mut self, node: usize, ev: CommitEvent) {
        let k = self.pos[node];
        self.pos[node] += 1;
        let idx = (k - self.base) as usize;
        if idx == self.log.len() {
            self.log.push_back(ev);
        } else {
            let reference = self.log[idx];
            assert_eq!(
                ev, reference,
                "audit: node {node} mem-commit #{k} diverged from the canonical \
                 commit stream (correspondence broken)"
            );
        }
        self.checks += 1;
        // Drop entries every node has confirmed; the log stays bounded
        // by the nodes' commit skew, not the program length.
        if let Some(&min) = self.pos.iter().min() {
            while self.base < min {
                self.log.pop_front();
                self.base += 1;
            }
        }
    }

    /// True when every node has absorbed the same number of events.
    pub(crate) fn aligned(&self) -> bool {
        self.pos.iter().all(|&p| p == self.pos[0])
    }

    /// Assertions passed so far.
    pub(crate) fn checks(&self) -> u64 {
        self.checks
    }

    /// Counts extra (end-of-run) assertions toward the total.
    pub(crate) fn add_checks(&mut self, n: u64) {
        self.checks += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(icount: u64, line: u64, outcome: CommitOutcome, victim: Option<u64>) -> CommitEvent {
        CommitEvent { icount, line, store: false, outcome, victim }
    }

    #[test]
    fn residency_model_tracks_episodes() {
        let mut a = NodeAudit::default();
        a.record(ev(0, 0x100, CommitOutcome::MissAllocated, None));
        a.record(ev(1, 0x100, CommitOutcome::Hit, None));
        a.record(ev(2, 0x200, CommitOutcome::MissAllocated, Some(0x100)));
        a.record(ev(3, 0x100, CommitOutcome::MissAllocated, None));
        assert_eq!(a.checks(), 4);
    }

    #[test]
    #[should_panic(expected = "false miss escaped DCUB coalescing")]
    fn double_miss_in_one_episode_panics() {
        let mut a = NodeAudit::default();
        a.record(ev(0, 0x100, CommitOutcome::MissAllocated, None));
        a.record(ev(1, 0x100, CommitOutcome::MissAllocated, None));
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn hit_on_absent_line_panics() {
        let mut a = NodeAudit::default();
        a.record(ev(0, 0x100, CommitOutcome::Hit, None));
    }

    #[test]
    fn reference_log_matches_identical_streams_and_trims() {
        let mut s = SystemAudit::new(2);
        for i in 0..8u64 {
            let e = ev(i, 0x40 * i, CommitOutcome::MissAllocated, None);
            s.absorb(0, e);
            s.absorb(1, e);
        }
        assert!(s.aligned());
        assert_eq!(s.checks(), 16);
        assert!(s.log.is_empty(), "fully confirmed entries are trimmed");
    }

    #[test]
    #[should_panic(expected = "diverged from the canonical commit stream")]
    fn divergent_stream_panics() {
        let mut s = SystemAudit::new(2);
        s.absorb(0, ev(0, 0x100, CommitOutcome::MissAllocated, None));
        s.absorb(1, ev(0, 0x140, CommitOutcome::MissAllocated, None));
    }
}
