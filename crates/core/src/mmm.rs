//! The synchronous-ESP Massive Memory Machine (Figure 1).
//!
//! DataScalar descends from the MMM (Garcia-Molina et al., early
//! 1980s): minicomputers in lock-step on a broadcast bus, each owning a
//! fraction of memory. The **lead processor** streams the operands it
//! owns, one per bus cycle; when the program touches an operand the
//! lead does not own, a **lead change** stalls all processors until the
//! new lead catches up. The model here regenerates Figure 1's timeline
//! and exposes the per-reference receive times and the datathread
//! structure (maximal runs of same-owner references).

/// A word in the MMM's reference string: which machine owns it.
pub type Owner = usize;

/// Timeline of one synchronous-ESP execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmmTimeline {
    /// Owners of the reference string, as given.
    pub owners: Vec<Owner>,
    /// Cycle at which every processor receives each word.
    pub receive_at: Vec<u64>,
    /// Number of lead changes.
    pub lead_changes: u64,
    /// Lengths of the maximal same-owner runs (the MMM's single active
    /// datathread at a time).
    pub runs: Vec<u64>,
}

impl MmmTimeline {
    /// Total cycles until the last word is received.
    pub fn total_cycles(&self) -> u64 {
        self.receive_at.last().copied().map_or(0, |t| t + 1)
    }

    /// Mean run length (the MMM analogue of mean datathread length).
    pub fn mean_run(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.runs.iter().sum::<u64>() as f64 / self.runs.len() as f64
        }
    }

    /// Renders the Figure 1 style timeline: one row per machine, one
    /// column per cycle, `wN` where machine's broadcast of word N is
    /// received.
    pub fn render(&self) -> String {
        let machines = self.owners.iter().copied().max().map_or(0, |m| m + 1);
        let cycles = self.total_cycles();
        let mut grid = vec![vec!["  .".to_string(); cycles as usize]; machines];
        for (i, (&o, &t)) in self.owners.iter().zip(&self.receive_at).enumerate() {
            grid[o][t as usize] = format!("w{:<2}", i + 1);
        }
        let mut out = String::new();
        out.push_str("machine/cycle ");
        for c in 0..cycles {
            out.push_str(&format!("{c:>3} "));
        }
        out.push('\n');
        for (m, row) in grid.iter().enumerate() {
            out.push_str(&format!("machine {m:<5} "));
            for cell in row {
                out.push_str(&format!("{cell:>3} "));
            }
            out.push('\n');
        }
        out
    }
}

/// Simulates synchronous ESP over a reference string.
///
/// `owners[i]` is the machine owning word `i`. While the lead does not
/// change, one word is broadcast (and received everywhere) per cycle;
/// each lead change inserts `lead_change_penalty` stall cycles — the
/// time for the new lead processor to catch up to the head of the
/// reference stream before its first broadcast.
///
/// # Examples
///
/// ```
/// // Figure 1: words w5..w7 on machine 2, all others on machine 1
/// // (0-indexed here: machine 1 and 0).
/// let owners = [0, 0, 0, 0, 1, 1, 1, 0, 0];
/// let t = ds_core::mmm::simulate(&owners, 2);
/// assert_eq!(t.lead_changes, 2);
/// assert_eq!(t.runs, vec![4, 3, 2]);
/// ```
pub fn simulate(owners: &[Owner], lead_change_penalty: u64) -> MmmTimeline {
    let mut receive_at = Vec::with_capacity(owners.len());
    let mut lead_changes = 0;
    let mut runs = Vec::new();
    let mut clock: u64 = 0;
    for (i, &o) in owners.iter().enumerate() {
        if i == 0 {
            runs.push(1);
        } else if owners[i - 1] == o {
            *runs.last_mut().expect("non-empty") += 1;
            clock += 1;
        } else {
            lead_changes += 1;
            runs.push(1);
            clock += 1 + lead_change_penalty;
        }
        receive_at.push(clock);
    }
    MmmTimeline { owners: owners.to_vec(), receive_at, lead_changes, runs }
}

/// The Figure 1 reference string: nine words, w5–w7 owned by machine 1,
/// the rest by machine 0 (paper numbering: machines 2 and 1).
pub fn figure1_owners() -> Vec<Owner> {
    vec![0, 0, 0, 0, 1, 1, 1, 0, 0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_owner_is_fully_pipelined() {
        let t = simulate(&[0; 10], 2);
        assert_eq!(t.lead_changes, 0);
        assert_eq!(t.total_cycles(), 10);
        assert_eq!(t.runs, vec![10]);
        assert_eq!(t.mean_run(), 10.0);
    }

    #[test]
    fn every_reference_alternates() {
        let t = simulate(&[0, 1, 0, 1], 2);
        assert_eq!(t.lead_changes, 3);
        // 1 + 3*(1+2) = 10 cycles total.
        assert_eq!(t.total_cycles(), 10);
        assert_eq!(t.mean_run(), 1.0);
    }

    #[test]
    fn figure1_timeline_shape() {
        let t = simulate(&figure1_owners(), 2);
        assert_eq!(t.lead_changes, 2);
        assert_eq!(t.runs, vec![4, 3, 2]);
        // Receive times strictly increase.
        assert!(t.receive_at.windows(2).all(|w| w[1] > w[0]));
        // Lead changes cost more than pipelined words.
        assert_eq!(t.receive_at[4] - t.receive_at[3], 3);
        assert_eq!(t.receive_at[5] - t.receive_at[4], 1);
    }

    #[test]
    fn render_contains_all_words() {
        let t = simulate(&figure1_owners(), 2);
        let s = t.render();
        for i in 1..=9 {
            assert!(s.contains(&format!("w{i}")), "missing w{i} in render");
        }
        assert!(s.contains("machine 0"));
        assert!(s.contains("machine 1"));
    }

    #[test]
    fn empty_reference_string() {
        let t = simulate(&[], 2);
        assert_eq!(t.total_cycles(), 0);
        assert_eq!(t.mean_run(), 0.0);
    }

    #[test]
    fn zero_penalty_degenerates_to_pipeline() {
        let t = simulate(&[0, 1, 0, 1], 0);
        assert_eq!(t.total_cycles(), 4);
        assert_eq!(t.lead_changes, 3);
    }
}
