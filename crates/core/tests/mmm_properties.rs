//! Property tests over the synchronous-ESP MMM model and the Figure 3
//! crossing arithmetic.

use ds_core::{datathread, mmm};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mmm_cycle_accounting_is_exact(
        owners in prop::collection::vec(0usize..4, 1..200),
        penalty in 0u64..10,
    ) {
        let t = mmm::simulate(&owners, penalty);
        // Total cycles = one per word + penalty per lead change.
        prop_assert_eq!(
            t.total_cycles(),
            owners.len() as u64 + t.lead_changes * penalty
        );
        // Runs partition the reference string.
        prop_assert_eq!(t.runs.iter().sum::<u64>(), owners.len() as u64);
        // Lead changes = runs - 1.
        prop_assert_eq!(t.lead_changes, t.runs.len() as u64 - 1);
        // Receive times strictly increase.
        prop_assert!(t.receive_at.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn mmm_mean_run_matches_definition(
        owners in prop::collection::vec(0usize..3, 1..100),
    ) {
        let t = mmm::simulate(&owners, 2);
        let mean = owners.len() as f64 / t.runs.len() as f64;
        prop_assert!((t.mean_run() - mean).abs() < 1e-9);
    }

    #[test]
    fn datascalar_crossings_equal_mmm_runs(
        owners in prop::collection::vec(0usize..4, 1..200),
    ) {
        // The Figure 3 crossing count and the MMM run count are the
        // same quantity seen from two angles.
        let t = mmm::simulate(&owners, 2);
        prop_assert_eq!(
            datathread::datascalar_crossings(&owners),
            t.runs.len() as u64
        );
    }

    #[test]
    fn traditional_crossings_bound_datascalar_for_all_remote_chains(
        owners in prop::collection::vec(1usize..4, 1..100),
    ) {
        // With no operand local to the requester (home = 0, owners >= 1),
        // the traditional system pays 2 per operand; DataScalar pays at
        // most one per operand (alternation) and at least one total.
        let c = datathread::compare_chain(&owners, 0);
        prop_assert!(c.datascalar >= 1);
        prop_assert!(c.datascalar <= owners.len() as u64);
        prop_assert_eq!(c.traditional, 2 * owners.len() as u64);
        prop_assert!(c.datascalar <= c.traditional);
    }

    #[test]
    fn more_penalty_never_speeds_the_mmm_up(
        owners in prop::collection::vec(0usize..4, 1..100),
        p in 0u64..6,
    ) {
        let fast = mmm::simulate(&owners, p);
        let slow = mmm::simulate(&owners, p + 3);
        prop_assert!(slow.total_cycles() >= fast.total_cycles());
    }
}
