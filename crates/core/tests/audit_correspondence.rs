//! Exercises the `audit` feature: the commit-time correspondence
//! auditor must stay silent (no panics) on real workloads while
//! actually performing checks. Compile-gated so `cargo test` without
//! the feature still builds this target as an empty test binary.
#![cfg(feature = "audit")]

use ds_core::{DsConfig, DsSystem};
use ds_workloads::{by_name, Scale};

fn run_audited(workload: &str, nodes: usize, max_insts: u64) -> u64 {
    let w = by_name(workload).expect("workload registered");
    let prog = (w.build)(Scale::Tiny);
    let mut config = DsConfig::with_nodes(nodes);
    config.max_insts = Some(max_insts);
    let mut sys = DsSystem::new(config, &prog);
    let result = sys.run().expect("workload executes under audit");
    assert!(result.committed > 0, "{workload}/{nodes}: nothing committed");
    sys.audit_checks()
}

#[test]
fn compress_2_nodes_passes_audit() {
    let checks = run_audited("compress", 2, 40_000);
    assert!(checks > 1_000, "auditor barely ran: {checks} checks");
}

#[test]
fn compress_4_nodes_passes_audit() {
    let checks = run_audited("compress", 4, 40_000);
    assert!(checks > 1_000, "auditor barely ran: {checks} checks");
}

#[test]
fn go_2_nodes_passes_audit() {
    let checks = run_audited("go", 2, 40_000);
    assert!(checks > 1_000, "auditor barely ran: {checks} checks");
}

#[test]
fn go_4_nodes_passes_audit() {
    let checks = run_audited("go", 4, 40_000);
    assert!(checks > 1_000, "auditor barely ran: {checks} checks");
}

/// A program that runs to completion, so the end-of-run ledger checks
/// (send/arrival balance, quiescent BSHRs, empty DCUBs) execute rather
/// than being skipped as they are for instruction-budget stops.
#[test]
fn complete_run_passes_end_of_run_ledger() {
    let src = r#"
        .data
        arr: .space 65536
        .text
        main:   li   t0, 512
                la   t1, arr
                li   t2, 0
        loop:   ld   t3, 0(t1)
                add  t2, t2, t3
                sd   t2, 0(t1)
                addi t1, t1, 128
                addi t0, t0, -1
                bnez t0, loop
                halt
    "#;
    let prog = ds_asm::assemble(src).expect("assembles");
    for nodes in [2, 4] {
        let config = DsConfig::with_nodes(nodes);
        let mut sys = DsSystem::new(config, &prog);
        let result = sys.run().expect("program completes");
        assert!(result.committed > 0);
        assert!(sys.audit_checks() > 0);
        assert!(sys.correspondence_holds());
    }
}
