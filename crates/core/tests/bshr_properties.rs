//! Property tests over the BSHR under random interleavings of
//! requests, arrivals and squashes: nothing leaks, nothing double
//! completes, occupancy accounting stays consistent. Also models
//! `LineMap` (the sorted-vec map under the BSHR, DCUB and traditional
//! wait lists since PR 1) against `BTreeMap` under random
//! insert/remove/lookup interleavings.

use ds_core::bshr::{Arrival, Bshr};
use ds_core::linemap::LineMap;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A load requests `line` (tag supplied by index).
    Request(u64),
    /// A broadcast for `line` arrives.
    Arrive(u64),
    /// The correspondence protocol posts a squash for `line`.
    Squash(u64),
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (0u64..8, 0u8..3).prop_map(|(line, kind)| {
        let line = line * 64;
        match kind {
            0 => Event::Request(line),
            1 => Event::Arrive(line),
            _ => Event::Squash(line),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn no_leaks_no_double_completion(
        events in prop::collection::vec(event_strategy(), 1..200),
    ) {
        let mut bshr = Bshr::new(16, 2);
        let mut completed: Vec<u64> = Vec::new(); // tags
        let mut outstanding: HashMap<u64, Vec<u64>> = HashMap::new(); // line -> tags
        for (i, &ev) in events.iter().enumerate() {
            let tag = i as u64;
            let now = i as u64 * 10;
            match ev {
                Event::Request(line) => {
                    // Mirror the node's usage: join an existing wait via
                    // the entry map, else request.
                    match outstanding.get_mut(&line) {
                        Some(tags) => {
                            bshr.join_wait(line, tag);
                            tags.push(tag);
                        }
                        None => {
                            if bshr.request(line, tag, now).is_none() {
                                outstanding.insert(line, vec![tag]);
                            } else {
                                completed.push(tag); // satisfied from buffer
                            }
                        }
                    }
                }
                Event::Arrive(line) => match bshr.on_arrival(line, now) {
                    Arrival::Completed(waiters) => {
                        let expect = outstanding.remove(&line).unwrap_or_default();
                        let got: Vec<u64> = waiters.iter().map(|&(t, _)| t).collect();
                        prop_assert_eq!(&got, &expect, "wrong waiters for line {:#x}", line);
                        for (t, ready) in waiters {
                            prop_assert!(ready >= now, "completion in the past");
                            completed.push(t);
                        }
                    }
                    Arrival::Buffered | Arrival::Squashed => {}
                },
                Event::Squash(line) => {
                    // Squashes must never kill an outstanding wait.
                    bshr.post_squash(line);
                    prop_assert!(
                        !outstanding.contains_key(&line) || bshr.has_wait(line),
                        "squash destroyed a wait for {:#x}", line
                    );
                }
            }
        }
        // Every completion is unique.
        let mut unique = completed.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), completed.len(), "double completion");
        // Residual waits are exactly the outstanding map.
        for line in outstanding.keys() {
            prop_assert!(bshr.has_wait(*line), "wait for {:#x} vanished", line);
        }
    }

    #[test]
    fn occupancy_never_negative_and_stats_monotone(
        events in prop::collection::vec(event_strategy(), 1..100),
    ) {
        let mut bshr = Bshr::new(4, 1);
        let mut last_arrivals = 0;
        let mut have_wait: std::collections::HashSet<u64> = Default::default();
        for (i, &ev) in events.iter().enumerate() {
            match ev {
                Event::Request(line) => {
                    if have_wait.contains(&line) {
                        bshr.join_wait(line, i as u64);
                    } else if bshr.request(line, i as u64, 0).is_none() {
                        have_wait.insert(line);
                    }
                }
                Event::Arrive(line) => {
                    if let Arrival::Completed(_) = bshr.on_arrival(line, 0) {
                        have_wait.remove(&line);
                    }
                }
                Event::Squash(line) => bshr.post_squash(line),
            }
            let s = bshr.stats();
            prop_assert!(s.arrivals >= last_arrivals);
            last_arrivals = s.arrivals;
            prop_assert!(bshr.occupancy() <= events.len());
            prop_assert!(s.max_occupancy >= bshr.occupancy());
        }
    }
}

/// One `LineMap` operation for the model test.
#[derive(Debug, Clone, Copy)]
enum MapOp {
    Insert(u64, u32),
    Remove(u64),
    Lookup(u64),
    GetOrDefault(u64),
}

fn map_op_strategy() -> impl Strategy<Value = MapOp> {
    // A small line universe so inserts, removes and lookups collide
    // often — the interesting paths are the collisions.
    (0u64..24, 0u32..1000, 0u8..4).prop_map(|(line, val, kind)| {
        let line = line * 64;
        match kind {
            0 => MapOp::Insert(line, val),
            1 => MapOp::Remove(line),
            2 => MapOp::Lookup(line),
            _ => MapOp::GetOrDefault(line),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `LineMap` behaves exactly like `BTreeMap` — same returns from
    /// every operation, same contents, same (sorted) iteration order.
    #[test]
    fn linemap_matches_btreemap_model(
        ops in prop::collection::vec(map_op_strategy(), 1..200),
    ) {
        let mut map: LineMap<u32> = LineMap::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for &op in &ops {
            match op {
                MapOp::Insert(line, val) => {
                    prop_assert_eq!(map.insert(line, val), model.insert(line, val));
                }
                MapOp::Remove(line) => {
                    prop_assert_eq!(map.remove(line), model.remove(&line));
                }
                MapOp::Lookup(line) => {
                    prop_assert_eq!(map.get(line), model.get(&line));
                    prop_assert_eq!(map.contains_key(line), model.contains_key(&line));
                }
                MapOp::GetOrDefault(line) => {
                    prop_assert_eq!(
                        *map.get_mut_or_default(line),
                        *model.entry(line).or_default()
                    );
                }
            }
            prop_assert_eq!(map.len(), model.len());
            prop_assert_eq!(map.is_empty(), model.is_empty());
            // Entry-for-entry identical in the same (ascending) order:
            // LineMap iteration is deterministic and sorted, which is
            // what lets it replace hash maps under the d1 lint rule.
            prop_assert!(
                map.entries().iter().map(|&(k, v)| (k, v)).eq(model.iter().map(|(&k, &v)| (k, v))),
                "entry streams diverged"
            );
        }
    }
}
