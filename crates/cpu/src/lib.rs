//! Processor models for the DataScalar reproduction.
//!
//! Three layers, mirroring SimpleScalar's structure (the paper's
//! simulation substrate, §3.1/§4.2):
//!
//! * [`FuncCore`] — a functional (architectural) interpreter of the
//!   DS-1 ISA. It defines the reference semantics every timing model
//!   must agree with.
//! * [`TraceSource`] — a demand-driven committed-instruction stream
//!   produced by a `FuncCore`. DataScalar nodes all execute the *same*
//!   program on the *same* data (SPSD), and the paper's simulations
//!   assume perfect branch prediction, so all nodes fetch the identical
//!   architected path; the trace source materialises that path once and
//!   lets each node consume it at its own pace (the skew between
//!   cursors *is* datathreading).
//! * [`OooCore`] — the out-of-order timing core: 8-wide fetch/issue/
//!   commit, a 256-entry Register Update Unit, a load/store queue with
//!   store-to-load forwarding, per-class functional units, and
//!   in-order commit. Memory timing is delegated to a [`MemSystem`]
//!   implementation — the DataScalar node, the traditional IRAM system
//!   and the perfect-cache model each provide one.

mod branch;
mod exec;
mod ooo;
mod trace;

pub use branch::{BranchModel, Predictor};
pub use exec::{ExecError, ExecRecord, FuncCore};
pub use ooo::{
    CoreStall, FuPool, LoadResponse, MemSystem, OooConfig, OooCore, OooStats, RuuSnapshot, RuuTag,
};
pub use trace::{InstFeed, ReadyWindow, TraceSource};

/// A simulation cycle count.
pub type Cycle = u64;
