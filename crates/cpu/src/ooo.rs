//! The out-of-order timing core.
//!
//! Modeled on SimpleScalar's `sim-outorder`, which the paper extended
//! (§3.1, §4.2): a Register Update Unit (RUU) tracks instruction
//! dependences, a load/store queue prevents loads from bypassing stores
//! to the same address and forwards store data in a single cycle, and
//! instructions issue out of order but **commit in program order** —
//! the property the DataScalar cache-correspondence protocol builds on.
//!
//! Values are resolved by the functional core at fetch (the paper
//! assumes perfect branch prediction, so the fetch stream is the
//! architected path); this module models *when* things happen, not
//! *what* they compute. All memory timing is delegated to a
//! [`MemSystem`] implementation.

use crate::branch::{BranchModel, Predictor};
use crate::exec::{ExecError, ExecRecord};
use crate::trace::InstFeed;
use crate::Cycle;
use ds_isa::{FuClass, Opcode};
use ds_obs::critpath::UNKNOWN_SEND;
use ds_obs::{CritNode, FillKind, Probe as _};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// The core's observability probe: the ds-obs recorder when the `obs`
/// feature is on, a zero-sized no-op otherwise (every `record` call
/// compiles away — see `ds_obs` crate docs on the zero-cost guarantee).
#[cfg(feature = "obs")]
pub(crate) type CoreProbe = ds_obs::Recorder;
/// The disabled probe (ZST).
#[cfg(not(feature = "obs"))]
pub(crate) type CoreProbe = ds_obs::NoopProbe;

/// Identifies an instruction in flight: its global instruction number.
pub type RuuTag = u64;

/// The answer a [`MemSystem`] gives to an issued load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadResponse {
    /// Data will be available at the given cycle (local service).
    Ready(Cycle),
    /// Data will arrive later via [`OooCore::complete_load`] (remote
    /// service — a BSHR wait in a DataScalar node, an off-chip
    /// request/response in the traditional system).
    Pending,
}

/// The memory side of a node, as seen by the core.
///
/// Implemented by the DataScalar node, the traditional IRAM system and
/// the perfect-cache model.
pub trait MemSystem {
    /// A load left the load/store queue at `now`. Returns the response
    /// plus whether the access was a (primary-cache) hit at issue time
    /// — the paper's per-LSQ-entry hit/miss state used by the
    /// correspondence protocol (§4.1).
    fn load_issued(&mut self, rec: &ExecRecord, now: Cycle, tag: RuuTag) -> (LoadResponse, bool);

    /// A memory instruction committed at `now`, in program order.
    /// `issue_hit` is the issue-time hit/miss for loads (`None` for
    /// stores, which only touch the cache at commit, §4.2).
    fn mem_committed(&mut self, rec: &ExecRecord, issue_hit: Option<bool>, now: Cycle);

    /// Instruction fetch needs the line containing `pc`. Returns the
    /// cycle fetch may proceed (`now` on an I-cache hit).
    fn fetch_line(&mut self, pc: u64, now: Cycle) -> Cycle;
}

/// Functional-unit pool sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuPool {
    /// Integer ALUs (single-cycle, pipelined).
    pub int_alu: usize,
    /// Integer multipliers (pipelined).
    pub int_mul: usize,
    /// Integer dividers (unpipelined).
    pub int_div: usize,
    /// FP adders (pipelined).
    pub fp_alu: usize,
    /// FP multipliers (pipelined).
    pub fp_mul: usize,
    /// FP dividers (unpipelined).
    pub fp_div: usize,
    /// Cache ports for loads and stores.
    pub mem_ports: usize,
}

impl Default for FuPool {
    /// An aggressive 8-wide machine, scaled up from SimpleScalar's
    /// defaults to match the paper's "processor built about five years
    /// hence".
    fn default() -> Self {
        FuPool { int_alu: 8, int_mul: 2, int_div: 1, fp_alu: 4, fp_mul: 2, fp_div: 1, mem_ports: 4 }
    }
}

impl FuPool {
    fn count(&self, class: FuClass) -> usize {
        match class {
            FuClass::IntAlu => self.int_alu,
            FuClass::IntMul => self.int_mul,
            FuClass::IntDiv => self.int_div,
            FuClass::FpAlu => self.fp_alu,
            FuClass::FpMul => self.fp_mul,
            FuClass::FpDiv => self.fp_div,
            FuClass::Mem => self.mem_ports,
        }
    }

    fn pipelined(class: FuClass) -> bool {
        !matches!(class, FuClass::IntDiv | FuClass::FpDiv)
    }
}

/// Core configuration — the paper's §4.2 processor by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OooConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Register Update Unit entries (instruction window).
    pub ruu_entries: usize,
    /// Load/store queue entries ("half as many entries as the RUU").
    pub lsq_entries: usize,
    /// Functional-unit mix.
    pub fu: FuPool,
    /// Branch handling (the paper's baseline is perfect prediction).
    pub branch: BranchModel,
}

impl Default for OooConfig {
    fn default() -> Self {
        OooConfig {
            fetch_width: 8,
            issue_width: 8,
            commit_width: 8,
            ruu_entries: 256,
            lsq_entries: 128,
            fu: FuPool::default(),
            branch: BranchModel::Perfect,
        }
    }
}

/// Aggregate core statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OooStats {
    /// Instructions committed.
    pub committed: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Loads whose data came from an older in-flight store (LSQ
    /// forwarding).
    pub forwarded_loads: u64,
    /// Cycles fetch was blocked on the I-cache.
    pub fetch_stall_cycles: u64,
    /// Fetch attempts blocked by a full RUU.
    pub ruu_full_stalls: u64,
    /// Fetch attempts blocked by a full LSQ.
    pub lsq_full_stalls: u64,
    /// Conditional branches + indirect jumps fetched.
    pub branches: u64,
    /// Mispredicted control transfers (0 under perfect prediction).
    pub branch_mispredicts: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EState {
    /// Waiting on `n` producers.
    Waiting(u32),
    /// Operands ready, queued for a functional unit.
    Ready,
    /// Executing (or waiting for remote data).
    Issued,
    /// Result available; may commit when it reaches the head.
    Done,
}

/// Consumer list of one window entry. Dependence fan-out is short for
/// almost every producer, so the first four readers live inline and
/// only wider fan-outs touch the heap — the plain-`Vec` version cost
/// one malloc/free per producing instruction on the simulator's
/// hottest path.
#[derive(Debug, Clone, Default)]
struct Consumers {
    inline_len: u8,
    inline: [RuuTag; 4],
    spill: Vec<RuuTag>,
}

impl Consumers {
    #[inline]
    fn push(&mut self, tag: RuuTag) {
        let n = self.inline_len as usize;
        if n < self.inline.len() {
            self.inline[n] = tag;
            self.inline_len += 1;
        } else {
            self.spill.push(tag);
        }
    }

    #[inline]
    fn iter(&self) -> impl Iterator<Item = RuuTag> + '_ {
        self.inline[..self.inline_len as usize].iter().copied().chain(self.spill.iter().copied())
    }
}

#[derive(Debug, Clone)]
struct RuuEntry {
    rec: ExecRecord,
    state: EState,
    consumers: Consumers,
    issue_hit: Option<bool>,
    /// For loads: the older store that covers this load's bytes, if any.
    forward_from: Option<RuuTag>,
    /// True once the load was answered [`LoadResponse::Pending`] —
    /// its data is coming from a remote node (or off chip), not local
    /// service. Distinguishes remote from local waits in the stall
    /// classifier.
    pending_remote: bool,
    /// Last-arrival timestamps for the critical-path analyzer (plain
    /// stores, maintained unconditionally; the derived `CritNode` is
    /// only built when the probe is enabled). `t_ready` is stamped
    /// when the last producer wakes this entry; `t_complete` at
    /// writeback.
    t_dispatch: Cycle,
    t_ready: Cycle,
    t_issue: Cycle,
    t_complete: Cycle,
    /// Producer whose completion was the last arrival making this
    /// entry ready; `RuuTag::MAX` when it dispatched ready.
    last_producer: RuuTag,
    /// How the completion was produced (stamped at issue).
    fill: FillKind,
    /// For remote fills: the cycle the data entered the sender's
    /// output queue ([`UNKNOWN_SEND`] otherwise) and the line it rode.
    fill_sent: Cycle,
    fill_line: u64,
}

/// Per-cycle facts the stall classifier needs that the pipeline stages
/// would otherwise discard: whether anything retired and whether fetch
/// hit a structural limit *this* cycle. Maintained only when the probe
/// is enabled (see [`OooCore::step`]).
#[derive(Debug, Clone, Copy, Default)]
struct StepFlags {
    retired: u32,
    ruu_full: bool,
    lsq_full: bool,
}

/// What one zero-or-more-commit cycle was spent on, classified
/// top-down from the head of the commit window: on a cycle where
/// nothing retires, the oldest instruction is what the machine is
/// truly waiting on. Meaningful only on instrumented builds (the
/// flags feeding it are maintained only while the probe is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStall {
    /// At least one instruction retired.
    Committing,
    /// Head is a memory op waiting on remotely-serviced data
    /// ([`LoadResponse::Pending`]); `pc` is its static PC.
    RemoteMemWait {
        /// Static PC of the blocked memory op.
        pc: u64,
    },
    /// Head is a memory op waiting on locally-serviced data.
    LocalMemWait {
        /// Static PC of the blocked memory op.
        pc: u64,
    },
    /// Fetch was blocked by a full RUU this cycle.
    RuuFull,
    /// Fetch was blocked by a full LSQ this cycle.
    LsqFull,
    /// The window is draining/refilling behind an unresolved
    /// mispredicted transfer.
    SquashReplay,
    /// Fetch is stalled (I-cache miss or post-redirect refill penalty).
    FetchStall,
    /// Nothing retired and nothing identifiably blocked (dependence
    /// chains, startup, or the program finished).
    Idle,
}

/// A point-in-time view of one RUU entry, taken when a deadlock report
/// needs to explain what the machine was waiting on. Carries only plain
/// copies — no references into the window — so reports outlive the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuuSnapshot {
    /// Static PC of the instruction.
    pub pc: u64,
    /// Zero-based index in the committed instruction stream.
    pub icount: u64,
    /// True for loads and stores.
    pub is_mem: bool,
    /// True for loads.
    pub is_load: bool,
    /// True once the load was answered [`LoadResponse::Pending`] — its
    /// data must arrive from a remote node.
    pub pending_remote: bool,
    /// The line a remote fill is expected to ride (0 until issued).
    pub fill_line: u64,
    /// Pipeline state label ("waiting" / "ready" / "issued" / "done").
    pub state: &'static str,
}

/// The out-of-order core of one node.
///
/// Drive it with one [`OooCore::step`] per cycle; deliver remote load
/// data with [`OooCore::complete_load`].
#[derive(Debug)]
pub struct OooCore {
    config: OooConfig,
    /// In-flight window; `window[0]` has tag `base_tag`.
    window: VecDeque<RuuEntry>,
    base_tag: RuuTag,
    next_fetch: RuuTag,
    fetch_done: bool,
    fetch_stall_until: Cycle,
    last_fetch_line: Option<u64>,
    /// Tags with all operands ready, as a bitmap over window slots
    /// (bit `i` == tag `base_tag + i`), scanned oldest-first at issue.
    ready: ReadySet,
    /// (completion cycle, tag) min-heap for completions more than one
    /// cycle out (multi-cycle units, memory, remote data).
    events: BinaryHeap<Reverse<(Cycle, RuuTag)>>,
    /// Completions due exactly next cycle — the overwhelmingly common
    /// case (single-cycle ALU ops, forwarded loads) — kept out of the
    /// heap: push is a `Vec` append, drain is a linear sweep. Always
    /// due at `due_next_cycle` when non-empty.
    due_next: Vec<RuuTag>,
    due_next_cycle: Cycle,
    /// Reused drain buffer for `due_next` (borrow split in writeback).
    due_scratch: Vec<RuuTag>,
    /// Latest in-flight producer of each integer / fp register.
    writer_i: [Option<RuuTag>; 32],
    writer_f: [Option<RuuTag>; 32],
    /// In-flight stores, program order: (tag, addr, bytes).
    store_queue: VecDeque<(RuuTag, u64, u64)>,
    /// Memory operations currently in the window (LSQ occupancy).
    mem_in_window: usize,
    /// Per-class unit free times, indexed by `FuClass as usize`.
    fu_free: [Vec<Cycle>; 7],
    stats: OooStats,
    /// Line size used to decide when fetch crosses into a new I-line.
    fetch_line_bytes: u64,
    predictor: Predictor,
    /// A mispredicted control transfer fetch is waiting on.
    redirect_tag: Option<RuuTag>,
    /// Cycle-stamped commit events (no-op unless built with `obs`).
    probe: CoreProbe,
    /// Current-cycle facts for [`OooCore::stall_class`] (instrumented
    /// builds only; stays zeroed otherwise).
    flags: StepFlags,
    /// One past the furthest trace index fetch has ever peeked —
    /// including lookahead reads that did not dispatch. Feeds the
    /// shared trace window's high-water accounting in the parallel
    /// engine ([`crate::TraceSource::note_peeks`]).
    peek_end: u64,
}

const FU_CLASSES: [FuClass; 7] = [
    FuClass::IntAlu,
    FuClass::IntMul,
    FuClass::IntDiv,
    FuClass::FpAlu,
    FuClass::FpMul,
    FuClass::FpDiv,
    FuClass::Mem,
];

/// Fixed-capacity bitmap of ready window slots.
///
/// The scheduler's working set is bounded by `ruu_entries`, so a few
/// machine words replace the old `BTreeSet<RuuTag>`: insert and remove
/// are single bit operations, oldest-first selection is a
/// `trailing_zeros` scan, and commit re-bases the map with a bit shift.
#[derive(Debug)]
struct ReadySet {
    words: Vec<u64>,
}

impl ReadySet {
    fn new(capacity: usize) -> Self {
        ReadySet { words: vec![0; capacity.div_ceil(64)] }
    }

    #[inline]
    fn insert(&mut self, slot: usize) {
        self.words[slot / 64] |= 1 << (slot % 64);
    }

    #[inline]
    fn clear(&mut self, slot: usize) {
        self.words[slot / 64] &= !(1 << (slot % 64));
    }

    /// True when any slot is ready.
    #[inline]
    fn any_set(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Slides every slot down by `k` after `k` instructions committed.
    fn shift_down(&mut self, k: usize) {
        let n = self.words.len();
        let (words, bits) = (k / 64, k % 64);
        if words > 0 {
            for i in 0..n {
                self.words[i] = if i + words < n { self.words[i + words] } else { 0 };
            }
        }
        if bits > 0 {
            for i in 0..n {
                let hi = if i + 1 < n { self.words[i + 1] } else { 0 };
                self.words[i] = (self.words[i] >> bits) | (hi << (64 - bits));
            }
        }
    }
}

impl OooCore {
    /// Builds an empty core.
    ///
    /// `fetch_line_bytes` is the I-cache line size (fetch consults the
    /// [`MemSystem`] once per line crossed).
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero widths or window
    /// sizes).
    pub fn new(config: OooConfig, fetch_line_bytes: u64) -> Self {
        assert!(config.fetch_width > 0 && config.issue_width > 0 && config.commit_width > 0);
        assert!(config.ruu_entries > 0 && config.lsq_entries > 0);
        assert!(fetch_line_bytes.is_power_of_two());
        debug_assert!(FU_CLASSES.iter().enumerate().all(|(i, &c)| c as usize == i));
        let fu_free = FU_CLASSES.map(|c| vec![0u64; config.fu.count(c).max(1)]);
        OooCore {
            config,
            window: VecDeque::with_capacity(config.ruu_entries),
            base_tag: 0,
            next_fetch: 0,
            fetch_done: false,
            fetch_stall_until: 0,
            last_fetch_line: None,
            ready: ReadySet::new(config.ruu_entries),
            events: BinaryHeap::new(),
            due_next: Vec::with_capacity(config.issue_width),
            due_next_cycle: 0,
            due_scratch: Vec::with_capacity(config.issue_width),
            writer_i: [None; 32],
            writer_f: [None; 32],
            store_queue: VecDeque::new(),
            mem_in_window: 0,
            fu_free,
            stats: OooStats::default(),
            fetch_line_bytes,
            predictor: Predictor::new(config.branch),
            redirect_tag: None,
            probe: CoreProbe::default(),
            flags: StepFlags::default(),
            peek_end: 0,
        }
    }

    /// The recorded commit events (instrumented builds only).
    #[cfg(feature = "obs")]
    pub fn events(&self) -> &ds_obs::EventRing {
        self.probe.ring()
    }

    /// The critical-path window of retired-instruction graph nodes
    /// (instrumented builds only).
    #[cfg(feature = "obs")]
    pub fn crit_window(&self) -> &ds_obs::CritWindow {
        self.probe.crit_window()
    }

    /// Resizes the critical-path window (instrumented builds only).
    /// Construction-time: the simulators call it before the first
    /// cycle, discarding the empty default window.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[cfg(feature = "obs")]
    pub fn set_crit_window_capacity(&mut self, capacity: usize) {
        self.probe.set_crit_capacity(capacity);
    }

    /// The core configuration.
    pub fn config(&self) -> &OooConfig {
        &self.config
    }

    /// Committed-instruction statistics.
    pub fn stats(&self) -> &OooStats {
        &self.stats
    }

    /// True once every fetched instruction has committed and the
    /// program has no more instructions.
    pub fn is_done(&self) -> bool {
        self.fetch_done && self.window.is_empty()
    }

    /// Number of instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// Instruction number the fetch stage will read next (the node's
    /// trace cursor; the minimum over nodes bounds trace trimming).
    pub fn fetch_cursor(&self) -> u64 {
        self.next_fetch
    }

    /// One past the furthest trace index fetch has ever peeked.
    pub fn peek_end(&self) -> u64 {
        self.peek_end
    }

    /// Upper bound (exclusive) on the trace indices fetch could peek if
    /// stepped at `now`, or `None` when fetch cannot read the trace
    /// this cycle (finished or stalled). The parallel engine uses the
    /// max over nodes to pre-extend the shared trace before fanning
    /// stepping out to worker threads.
    pub fn prefetch_bound(&self, now: Cycle) -> Option<u64> {
        if self.fetch_done || self.fetch_stall_until > now {
            return None;
        }
        Some(self.next_fetch + self.config.fetch_width as u64)
    }

    /// Tag of the oldest in-flight instruction (== committed count).
    pub fn head_tag(&self) -> RuuTag {
        self.base_tag
    }

    /// Snapshot of the oldest in-flight instruction — the one the
    /// commit stage is waiting on — for deadlock reports. `None` when
    /// the window is empty (fetch-starved or finished).
    pub fn oldest_entry(&self) -> Option<RuuSnapshot> {
        self.window.front().map(|e| RuuSnapshot {
            pc: e.rec.pc,
            icount: e.rec.icount,
            is_mem: e.rec.is_load() || e.rec.is_store(),
            is_load: e.rec.is_load(),
            pending_remote: e.pending_remote,
            fill_line: e.fill_line,
            state: match e.state {
                EState::Waiting(_) => "waiting",
                EState::Ready => "ready",
                EState::Issued => "issued",
                EState::Done => "done",
            },
        })
    }

    fn entry_mut(&mut self, tag: RuuTag) -> Option<&mut RuuEntry> {
        if tag < self.base_tag {
            return None;
        }
        let idx = (tag - self.base_tag) as usize;
        self.window.get_mut(idx)
    }

    /// Supplies the completion time for a load previously answered
    /// [`LoadResponse::Pending`]. Safe to call for already-committed or
    /// unknown tags (ignored) — a squashed/duplicate arrival must not
    /// wedge the core.
    pub fn complete_load(&mut self, tag: RuuTag, available_at: Cycle) {
        if let Some(e) = self.entry_mut(tag) {
            if e.state == EState::Issued {
                self.events.push(Reverse((available_at, tag)));
            }
        }
    }

    /// Like [`OooCore::complete_load`], additionally recording the
    /// fill's cross-node provenance: the cycle the data entered the
    /// sender's output queue and the line it rode. Feeds the
    /// critical-path communication edges (measured end-to-end from the
    /// send, so bus-grant queueing is included) and the trace flow
    /// arrows; timing is unchanged.
    pub fn complete_load_from(&mut self, tag: RuuTag, available_at: Cycle, line: u64, sent: Cycle) {
        if let Some(e) = self.entry_mut(tag) {
            e.fill_sent = sent;
            e.fill_line = line;
        }
        self.complete_load(tag, available_at);
    }

    /// Advances one cycle: writeback, commit, issue, fetch.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors from the trace source.
    pub fn step<M: MemSystem + ?Sized, F: InstFeed + ?Sized>(
        &mut self,
        ms: &mut M,
        feed: &mut F,
        now: Cycle,
    ) -> Result<(), ExecError> {
        if self.probe.enabled() {
            self.flags = StepFlags::default();
        }
        self.writeback(now);
        self.commit(ms, now);
        self.issue(ms, now);
        self.fetch(ms, feed, now)?;
        Ok(())
    }

    /// Earliest future cycle at which stepping this core can change any
    /// architectural or statistical state, given no external input —
    /// the core's event horizon. `Cycle::MAX` means the core is
    /// quiescent until data arrives via [`OooCore::complete_load`].
    /// Conservative by design: it may return `now + 1` when nothing
    /// would actually happen, but never a cycle later than the true
    /// next event. Call after [`OooCore::step`] for the same `now`.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        if self.ready.any_set() {
            return now + 1; // a ready instruction may issue
        }
        if matches!(self.window.front().map(|e| e.state), Some(EState::Done)) {
            return now + 1; // the head may commit
        }
        if !self.due_next.is_empty() {
            return now + 1; // a completion lands next cycle
        }
        let mut horizon = match self.events.peek() {
            Some(&Reverse((cycle, _))) => cycle.max(now + 1),
            None => Cycle::MAX,
        };
        if !self.fetch_done {
            if self.fetch_stall_until == Cycle::MAX {
                // Frozen behind a mispredicted transfer: the redirect
                // resolves through that instruction's own completion,
                // already in the event heap (or arriving remotely).
            } else if self.fetch_stall_until > now {
                horizon = horizon.min(self.fetch_stall_until);
            } else if self.window.len() < self.config.ruu_entries {
                // Fetch is unstalled with window room: it may dispatch
                // (or hit the LSQ limit, or find the end of the trace)
                // next cycle. Don't try to predict which.
                return now + 1;
            }
            // else RUU-full: fetch unblocks only after a commit, and
            // commits need a writeback event already accounted above.
        }
        horizon
    }

    /// Batch-applies the per-cycle bookkeeping for the skipped range
    /// `now + 1 .. target`, exactly as that many no-progress calls to
    /// [`OooCore::step`] would have. Only valid when the engine proved
    /// (via [`OooCore::next_event`]) that every cycle in the range is
    /// event-free; the only naive-loop effects in such cycles are the
    /// fetch stall counters and the per-cycle flag reset.
    /// Allocation-free (ds-lint a1).
    pub fn advance_to(&mut self, now: Cycle, target: Cycle) {
        let skipped = target.saturating_sub(now + 1);
        if skipped == 0 {
            return;
        }
        // Nothing retires and fetch never dispatches inside a skipped
        // range, so the per-cycle flags are identical every cycle.
        self.flags = StepFlags::default();
        if self.fetch_done {
            return;
        }
        if self.fetch_stall_until > now {
            // Stalled fetch (I-line miss, post-redirect refill, or a
            // frozen mispredict): one stall cycle per skipped cycle.
            // The horizon never exceeds a finite `fetch_stall_until`,
            // so the whole range is stalled.
            self.stats.fetch_stall_cycles += skipped;
        } else if self.window.len() >= self.config.ruu_entries {
            // RUU-full: fetch retried and was turned away every cycle.
            self.stats.ruu_full_stalls += skipped;
            if self.probe.enabled() {
                self.flags.ruu_full = true;
            }
        }
    }

    /// Classifies what this cycle was spent on, for top-down cycle
    /// accounting. Call after [`OooCore::step`] for the same `now`.
    /// Meaningful only on instrumented builds.
    pub fn stall_class(&self, now: Cycle) -> CoreStall {
        if self.flags.retired > 0 {
            return CoreStall::Committing;
        }
        match self.window.front() {
            Some(head) => {
                let op = head.rec.inst.op;
                if op.is_mem() && matches!(head.state, EState::Ready | EState::Issued) {
                    if head.pending_remote {
                        CoreStall::RemoteMemWait { pc: head.rec.pc }
                    } else {
                        CoreStall::LocalMemWait { pc: head.rec.pc }
                    }
                } else if self.redirect_tag.is_some() {
                    CoreStall::SquashReplay
                } else if self.flags.ruu_full {
                    CoreStall::RuuFull
                } else if self.flags.lsq_full {
                    CoreStall::LsqFull
                } else if !self.fetch_done && self.fetch_stall_until > now {
                    CoreStall::FetchStall
                } else {
                    CoreStall::Idle
                }
            }
            None => {
                if !self.fetch_done && self.fetch_stall_until > now {
                    if self.fetch_stall_until == Cycle::MAX {
                        CoreStall::SquashReplay
                    } else {
                        CoreStall::FetchStall
                    }
                } else {
                    CoreStall::Idle
                }
            }
        }
    }

    /// Queues a completion event. Completions due exactly next cycle
    /// take the flat-`Vec` fast path; everything else goes to the heap.
    #[inline]
    fn schedule(&mut self, now: Cycle, at: Cycle, tag: RuuTag) {
        if at == now + 1 && (self.due_next.is_empty() || self.due_next_cycle == at) {
            self.due_next_cycle = at;
            self.due_next.push(tag);
        } else {
            self.events.push(Reverse((at, tag)));
        }
    }

    fn writeback(&mut self, now: Cycle) {
        if !self.due_next.is_empty() && self.due_next_cycle <= now {
            let mut due = std::mem::take(&mut self.due_scratch);
            std::mem::swap(&mut due, &mut self.due_next);
            for &tag in &due {
                self.complete_tag(tag, now);
            }
            due.clear();
            self.due_scratch = due;
        }
        while let Some(&Reverse((cycle, tag))) = self.events.peek() {
            if cycle > now {
                break;
            }
            self.events.pop();
            self.complete_tag(tag, now);
        }
    }

    /// Marks `tag` done and wakes its consumers (one completion event).
    fn complete_tag(&mut self, tag: RuuTag, now: Cycle) {
        let consumers = {
            let Some(e) = self.entry_mut(tag) else { return };
            if e.state == EState::Done {
                return;
            }
            e.state = EState::Done;
            e.t_complete = now;
            std::mem::take(&mut e.consumers)
        };
        if self.redirect_tag == Some(tag) {
            // The mispredicted transfer resolved: redirect fetch
            // after the front-end refill penalty.
            self.redirect_tag = None;
            self.fetch_stall_until = now + 1 + self.predictor.model().penalty();
        }
        for c in consumers.iter() {
            if let Some(e) = self.entry_mut(c) {
                if let EState::Waiting(n) = e.state {
                    let n = n - 1;
                    e.state = if n == 0 { EState::Ready } else { EState::Waiting(n) };
                    if n == 0 {
                        // This completion was the consumer's last
                        // arrival: its data-dependence edge.
                        e.t_ready = now;
                        e.last_producer = tag;
                        self.ready.insert((c - self.base_tag) as usize);
                    }
                }
            }
        }
    }

    fn commit<M: MemSystem + ?Sized>(&mut self, ms: &mut M, now: Cycle) {
        let mut retired = 0usize;
        for _ in 0..self.config.commit_width {
            let Some(head) = self.window.front() else { break };
            if head.state != EState::Done {
                break;
            }
            // ds-lint: allow(p1) front() above proved the window non-empty
            let e = self.window.pop_front().expect("head exists");
            let tag = self.base_tag;
            self.base_tag += 1;
            retired += 1;
            if self.probe.enabled() {
                self.edge_note_retire(&e, tag, now);
            }
            let op = e.rec.inst.op;
            if op.is_mem() {
                self.mem_in_window -= 1;
                if op.is_store() {
                    debug_assert_eq!(self.store_queue.front().map(|s| s.0), Some(tag));
                    self.store_queue.pop_front();
                    self.stats.stores += 1;
                } else {
                    self.stats.loads += 1;
                }
                ms.mem_committed(&e.rec, e.issue_hit, now);
            }
            // Retire the rename-table pointer to this instruction; only
            // its own destination can still name it (younger writers of
            // the same register overwrite the slot at dispatch).
            match dest_reg(&e.rec) {
                Some((false, r)) if r != 0 && self.writer_i[r as usize] == Some(tag) => {
                    self.writer_i[r as usize] = None;
                }
                Some((true, r)) if self.writer_f[r as usize] == Some(tag) => {
                    self.writer_f[r as usize] = None;
                }
                _ => {}
            }
            self.stats.committed += 1;
        }
        if retired > 0 {
            self.ready.shift_down(retired);
            if self.probe.enabled() {
                self.flags.retired = retired as u32;
            }
            self.probe.record(now, ds_obs::EventKind::Commit { n: retired as u32 });
        }
    }

    /// Records the retiring entry's last-arrival graph node (and, for
    /// remote fills, the flow-finish event pairing the consuming commit
    /// with the broadcast/request send). Runs once per retirement on
    /// instrumented builds; rules a1/ta1 apply.
    fn edge_note_retire(&mut self, e: &RuuEntry, tag: RuuTag, now: Cycle) {
        let producer_back =
            if e.last_producer == RuuTag::MAX { 0 } else { (tag - e.last_producer) as u32 };
        self.probe.edge_retire(CritNode {
            pc: e.rec.pc,
            dispatch: e.t_dispatch,
            ready: e.t_ready,
            issue: e.t_issue,
            complete: e.t_complete,
            commit: now,
            sent: e.fill_sent,
            producer_back,
            fill: e.fill,
        });
        if e.fill == FillKind::RemoteFill && e.fill_sent != UNKNOWN_SEND {
            self.probe
                .record(now, ds_obs::EventKind::RemoteFillCommit { line: e.fill_line, sent: e.fill_sent });
        }
    }

    fn issue<M: MemSystem + ?Sized>(&mut self, ms: &mut M, now: Cycle) {
        let mut issued = 0;
        // Scan ready slots oldest-first; each candidate is examined at
        // most once per cycle. A slot that cannot acquire its unit
        // keeps its bit and waits for the next cycle.
        'scan: for w in 0..self.ready.words.len() {
            let mut bits = self.ready.words[w];
            while bits != 0 {
                if issued >= self.config.issue_width {
                    break 'scan;
                }
                let slot = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let tag = self.base_tag + slot as u64;
                let (op, rec, forward_from) = {
                    // ds-lint: allow(p1) ready bitmap only holds in-window slots (cleared on retire)
                    let e = self.entry_mut(tag).expect("ready entries are in-window");
                    (e.rec.inst.op, e.rec, e.forward_from)
                };
                let class = op.fu_class();
                // LSQ forwarding bypasses the cache port.
                let forwarding = op.is_load() && forward_from.is_some();
                if !forwarding && self.acquire_fu(class, now).is_none() {
                    continue;
                }
                self.ready.clear(slot);
                issued += 1;
                if forwarding {
                    self.stats.forwarded_loads += 1;
                    // ds-lint: allow(p1) same tag as the entry_mut above: still in-window
                    let e = self.entry_mut(tag).unwrap();
                    e.state = EState::Issued;
                    e.issue_hit = Some(true);
                    e.t_issue = now;
                    e.fill = FillKind::Forward;
                    self.schedule(now, now + 1, tag);
                } else if op.is_load() {
                    let (resp, hit) = ms.load_issued(&rec, now, tag);
                    // ds-lint: allow(p1) same tag as the entry_mut above: still in-window
                    let e = self.entry_mut(tag).unwrap();
                    e.state = EState::Issued;
                    e.issue_hit = Some(hit);
                    e.pending_remote = matches!(resp, LoadResponse::Pending);
                    e.t_issue = now;
                    e.fill = if e.pending_remote { FillKind::RemoteFill } else { FillKind::LocalFill };
                    match resp {
                        LoadResponse::Ready(at) => {
                            self.schedule(now, at.max(now + 1), tag);
                        }
                        LoadResponse::Pending => {}
                    }
                } else {
                    // ds-lint: allow(p1) same tag as the entry_mut above: still in-window
                    let e = self.entry_mut(tag).unwrap();
                    e.state = EState::Issued;
                    e.t_issue = now;
                    self.schedule(now, now + op.latency(), tag);
                }
            }
        }
    }

    fn acquire_fu(&mut self, class: FuClass, now: Cycle) -> Option<usize> {
        let units = &mut self.fu_free[class as usize];
        let idx = units.iter().position(|&f| f <= now)?;
        units[idx] = if FuPool::pipelined(class) {
            now + 1
        } else {
            now + class_latency(class)
        };
        Some(idx)
    }

    fn fetch<M: MemSystem + ?Sized, F: InstFeed + ?Sized>(
        &mut self,
        ms: &mut M,
        feed: &mut F,
        now: Cycle,
    ) -> Result<(), ExecError> {
        if self.fetch_done {
            return Ok(());
        }
        if self.fetch_stall_until > now {
            self.stats.fetch_stall_cycles += 1;
            return Ok(());
        }
        for _ in 0..self.config.fetch_width {
            if self.window.len() >= self.config.ruu_entries {
                self.stats.ruu_full_stalls += 1;
                if self.probe.enabled() {
                    self.flags.ruu_full = true;
                }
                break;
            }
            if self.next_fetch + 1 > self.peek_end {
                self.peek_end = self.next_fetch + 1;
            }
            let rec = match feed.fetch_record(self.next_fetch)? {
                Some(r) => r,
                None => {
                    self.fetch_done = true;
                    break;
                }
            };
            if rec.inst.op.is_mem() && self.mem_in_window >= self.config.lsq_entries {
                self.stats.lsq_full_stalls += 1;
                if self.probe.enabled() {
                    self.flags.lsq_full = true;
                }
                break;
            }
            // I-cache: consult the memory system once per line crossed.
            let line = rec.pc & !(self.fetch_line_bytes - 1);
            if self.last_fetch_line != Some(line) {
                let avail = ms.fetch_line(rec.pc, now);
                self.last_fetch_line = Some(line);
                if avail > now {
                    // The line is being fetched; fetch resumes (and the
                    // instruction dispatches) when it arrives.
                    self.fetch_stall_until = avail;
                    break;
                }
            }
            self.dispatch(rec, now);
            self.next_fetch += 1;
            if rec.inst.op.is_control() {
                let correct = if rec.inst.op.is_branch() {
                    self.stats.branches += 1;
                    self.predictor.predict_conditional(
                        rec.pc,
                        rec.taken,
                        rec.inst.branch_target(rec.pc),
                    )
                } else if rec.inst.op == Opcode::Jalr {
                    self.stats.branches += 1;
                    self.predictor.predict_indirect(rec.pc, rec.next_pc)
                } else {
                    true // direct jumps never mispredict
                };
                if !correct {
                    // Fetch freezes until this transfer resolves; no
                    // wrong path is issued (the correspondence protocol
                    // forbids speculative broadcasts, §4.1).
                    self.stats.branch_mispredicts += 1;
                    self.redirect_tag = Some(rec.icount);
                    self.fetch_stall_until = Cycle::MAX;
                    break;
                }
            }
            if self.fetch_stall_until > now {
                break;
            }
            if rec.inst.op.is_control() && rec.taken {
                break;
            }
        }
        Ok(())
    }

    fn dispatch(&mut self, rec: ExecRecord, now: Cycle) {
        let tag = rec.icount;
        debug_assert_eq!(tag, self.base_tag + self.window.len() as u64);
        let op = rec.inst.op;
        // Collect producer dependences: at most 2 int + 2 fp sources
        // plus 1 store dependence, deduplicated in place — no heap.
        let mut producers = [0 as RuuTag; 5];
        let mut np = 0usize;
        let (iregs, ni) = int_sources(&rec);
        for &r in &iregs[..ni] {
            if r != 0 {
                if let Some(p) = self.writer_i[r as usize] {
                    if !producers[..np].contains(&p) {
                        producers[np] = p;
                        np += 1;
                    }
                }
            }
        }
        let (fregs, nf) = fp_sources(&rec);
        for &r in &fregs[..nf] {
            if let Some(p) = self.writer_f[r as usize] {
                if !producers[..np].contains(&p) {
                    producers[np] = p;
                    np += 1;
                }
            }
        }
        // Loads depend on the youngest older overlapping store.
        let mut forward_from = None;
        if op.is_load() {
            let (lo, hi) = (rec.mem_addr, rec.mem_addr + rec.mem_bytes);
            for &(stag, saddr, sbytes) in self.store_queue.iter().rev() {
                let (slo, shi) = (saddr, saddr + sbytes);
                if lo < shi && slo < hi {
                    if !producers[..np].contains(&stag) {
                        producers[np] = stag;
                        np += 1;
                    }
                    if slo <= lo && hi <= shi {
                        // Store covers the load: forward.
                        forward_from = Some(stag);
                    }
                    break;
                }
            }
        }
        // Only count producers not already done.
        let mut deps = 0u32;
        for &p in &producers[..np] {
            if let Some(e) = self.entry_mut(p) {
                if e.state != EState::Done {
                    e.consumers.push(tag);
                    deps += 1;
                }
            }
        }
        let state = if deps == 0 { EState::Ready } else { EState::Waiting(deps) };
        if state == EState::Ready {
            self.ready.insert(self.window.len());
        }
        if op.is_mem() {
            self.mem_in_window += 1;
            if op.is_store() {
                self.store_queue.push_back((tag, rec.mem_addr, rec.mem_bytes));
            }
        }
        // Record the rename-table destination.
        match dest_reg(&rec) {
            Some((false, r)) if r != 0 => self.writer_i[r as usize] = Some(tag),
            Some((true, r)) => self.writer_f[r as usize] = Some(tag),
            _ => {}
        }
        self.window.push_back(RuuEntry {
            rec,
            state,
            consumers: Consumers::default(),
            issue_hit: None,
            forward_from,
            pending_remote: false,
            t_dispatch: now,
            // Overwritten when the last producer wakes this entry; a
            // dispatch-ready instruction's last arrival is the frontend.
            t_ready: now,
            t_issue: now,
            t_complete: now,
            last_producer: RuuTag::MAX,
            fill: FillKind::Exec,
            fill_sent: UNKNOWN_SEND,
            fill_line: 0,
        });
    }
}

fn class_latency(class: FuClass) -> Cycle {
    match class {
        FuClass::IntDiv | FuClass::FpDiv => 12,
        _ => 1,
    }
}

/// Integer source registers of an executed instruction (fixed-size,
/// no heap: at most two).
fn int_sources(rec: &ExecRecord) -> ([u8; 2], usize) {
    use Opcode::*;
    let i = rec.inst;
    match i.op {
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sltu => {
            ([i.rs, i.rt], 2)
        }
        Addi | Andi | Ori | Xori | Slti | Slli | Srli | Srai => ([i.rs, 0], 1),
        Lui | Nop | Halt | Jal => ([0; 2], 0),
        Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => ([i.rs, 0], 1),
        Sb | Sh | Sw | Sd => ([i.rs, i.rd], 2), // rd is the store value
        Fsd => ([i.rs, 0], 1),
        Beq | Bne | Blt | Bge | Bltu | Bgeu => ([i.rs, i.rt], 2),
        Jalr => ([i.rs, 0], 1),
        Fcvtdw => ([i.rs, 0], 1),
        Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fmov | Fneg | Fabs | Feq | Flt | Fle | Fcvtwd => {
            ([0; 2], 0)
        }
    }
}

/// Floating-point source registers (fixed-size, no heap).
fn fp_sources(rec: &ExecRecord) -> ([u8; 2], usize) {
    use Opcode::*;
    let i = rec.inst;
    match i.op {
        Fadd | Fsub | Fmul | Fdiv | Feq | Flt | Fle => ([i.rs, i.rt], 2),
        Fsqrt | Fmov | Fneg | Fabs | Fcvtwd => ([i.rs, 0], 1),
        Fsd => ([i.rd, 0], 1), // store value
        _ => ([0; 2], 0),
    }
}

/// Destination register: `(is_fp, reg)`.
fn dest_reg(rec: &ExecRecord) -> Option<(bool, u8)> {
    let i = rec.inst;
    let op = i.op;
    if op.writes_freg() {
        return Some((true, i.rd));
    }
    use Opcode::*;
    match op {
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sltu
        | Addi | Andi | Ori | Xori | Slti | Slli | Srli | Srai | Lui | Lb | Lbu | Lh | Lhu
        | Lw | Lwu | Ld | Feq | Flt | Fle | Fcvtwd | Jal | Jalr => Some((false, i.rd)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::FuncCore;
    use crate::trace::TraceSource;
    use ds_isa::{reg, Inst};
    use ds_mem::MemImage;

    /// A perfect memory system: 1-cycle loads, instant fetch.
    struct PerfectMem {
        loads_seen: u64,
        commits_seen: u64,
    }

    impl PerfectMem {
        fn new() -> Self {
            PerfectMem { loads_seen: 0, commits_seen: 0 }
        }
    }

    impl MemSystem for PerfectMem {
        fn load_issued(&mut self, _r: &ExecRecord, now: Cycle, _t: RuuTag) -> (LoadResponse, bool) {
            self.loads_seen += 1;
            (LoadResponse::Ready(now + 1), true)
        }
        fn mem_committed(&mut self, _r: &ExecRecord, _h: Option<bool>, _now: Cycle) {
            self.commits_seen += 1;
        }
        fn fetch_line(&mut self, _pc: u64, now: Cycle) -> Cycle {
            now
        }
    }

    /// Memory that delays every load by a fixed latency via Pending.
    struct SlowMem {
        latency: Cycle,
        pending: Vec<(RuuTag, Cycle)>,
    }

    impl MemSystem for SlowMem {
        fn load_issued(&mut self, _r: &ExecRecord, now: Cycle, t: RuuTag) -> (LoadResponse, bool) {
            self.pending.push((t, now + self.latency));
            (LoadResponse::Pending, false)
        }
        fn mem_committed(&mut self, _r: &ExecRecord, _h: Option<bool>, _now: Cycle) {}
        fn fetch_line(&mut self, _pc: u64, now: Cycle) -> Cycle {
            now
        }
    }

    fn trace_of(prog: &[Inst]) -> TraceSource {
        let mut mem = MemImage::new();
        for (i, inst) in prog.iter().enumerate() {
            mem.write_u64(0x1000 + 8 * i as u64, inst.encode());
        }
        TraceSource::new(FuncCore::new(0x1000), mem)
    }

    fn run_to_completion<M: MemSystem>(
        core: &mut OooCore,
        ms: &mut M,
        trace: &mut TraceSource,
        deliver: impl Fn(&mut M, &mut OooCore, Cycle),
    ) -> Cycle {
        let mut now = 0;
        while !core.is_done() {
            core.step(ms, trace, now).unwrap();
            deliver(ms, core, now);
            now += 1;
            assert!(now < 1_000_000, "runaway simulation");
        }
        now
    }

    #[test]
    fn straight_line_commits_everything() {
        let prog: Vec<Inst> = (0..20)
            .map(|k| Inst::rri(Opcode::Addi, reg::T0, reg::T0, k))
            .chain([Inst::halt()])
            .collect();
        let mut trace = trace_of(&prog);
        let mut core = OooCore::new(OooConfig::default(), 32);
        let mut ms = PerfectMem::new();
        run_to_completion(&mut core, &mut ms, &mut trace, |_, _, _| {});
        assert_eq!(core.committed(), 21);
        assert!(core.is_done());
    }

    #[test]
    fn dependent_chain_is_serialised() {
        // 16 dependent addis: cannot finish faster than ~16 cycles.
        let prog: Vec<Inst> = (0..16)
            .map(|_| Inst::rri(Opcode::Addi, reg::T0, reg::T0, 1))
            .chain([Inst::halt()])
            .collect();
        let mut trace = trace_of(&prog);
        let mut core = OooCore::new(OooConfig::default(), 32);
        let mut ms = PerfectMem::new();
        let cycles = run_to_completion(&mut core, &mut ms, &mut trace, |_, _, _| {});
        assert!(cycles >= 16, "dependent chain took {cycles} cycles");
    }

    #[test]
    fn independent_ops_exploit_width() {
        // 64 independent adds on distinct registers: an 8-wide machine
        // should need far fewer than 64 cycles.
        let prog: Vec<Inst> = (0..64)
            .map(|k| Inst::rri(Opcode::Addi, reg::T0 + (k % 8) as u8, reg::ZERO, k))
            .chain([Inst::halt()])
            .collect();
        let mut trace = trace_of(&prog);
        let mut core = OooCore::new(OooConfig::default(), 32);
        let mut ms = PerfectMem::new();
        let cycles = run_to_completion(&mut core, &mut ms, &mut trace, |_, _, _| {});
        assert!(cycles < 32, "8-wide machine took {cycles} cycles for 64 indep ops");
    }

    #[test]
    fn store_to_load_forwarding() {
        let prog = [
            Inst::rri(Opcode::Addi, reg::T0, reg::ZERO, 0x4000),
            Inst::rri(Opcode::Addi, reg::T1, reg::ZERO, 7),
            Inst::store(Opcode::Sd, reg::T1, reg::T0, 0),
            Inst::load(Opcode::Ld, reg::T2, reg::T0, 0),
            Inst::halt(),
        ];
        let mut trace = trace_of(&prog);
        let mut core = OooCore::new(OooConfig::default(), 32);
        let mut ms = PerfectMem::new();
        run_to_completion(&mut core, &mut ms, &mut trace, |_, _, _| {});
        assert_eq!(core.stats().forwarded_loads, 1);
        assert_eq!(ms.loads_seen, 0, "forwarded load never reaches memory");
        assert_eq!(ms.commits_seen, 2, "store + load commit via MemSystem");
    }

    #[test]
    fn partial_overlap_blocks_but_does_not_forward() {
        let prog = [
            Inst::rri(Opcode::Addi, reg::T0, reg::ZERO, 0x4000),
            Inst::store(Opcode::Sw, reg::T1, reg::T0, 0), // 4 bytes
            Inst::load(Opcode::Ld, reg::T2, reg::T0, 0),  // 8 bytes
            Inst::halt(),
        ];
        let mut trace = trace_of(&prog);
        let mut core = OooCore::new(OooConfig::default(), 32);
        let mut ms = PerfectMem::new();
        run_to_completion(&mut core, &mut ms, &mut trace, |_, _, _| {});
        assert_eq!(core.stats().forwarded_loads, 0);
        assert_eq!(ms.loads_seen, 1, "load goes to memory after the store");
    }

    #[test]
    fn pending_loads_complete_via_callback() {
        let prog = [
            Inst::rri(Opcode::Addi, reg::T0, reg::ZERO, 0x4000),
            Inst::load(Opcode::Ld, reg::T1, reg::T0, 0),
            Inst::rrr(Opcode::Add, reg::T2, reg::T1, reg::T1),
            Inst::halt(),
        ];
        let mut trace = trace_of(&prog);
        let mut core = OooCore::new(OooConfig::default(), 32);
        let mut ms = SlowMem { latency: 50, pending: Vec::new() };
        let cycles = run_to_completion(&mut core, &mut ms, &mut trace, |ms, core, now| {
            let due: Vec<_> = ms.pending.iter().filter(|&&(_, at)| at <= now).cloned().collect();
            ms.pending.retain(|&(_, at)| at > now);
            for (tag, at) in due {
                core.complete_load(tag, at.max(now + 1));
            }
        });
        assert!(cycles >= 50, "load latency must gate completion, took {cycles}");
        assert_eq!(core.committed(), 4);
    }

    #[test]
    fn in_order_commit_of_mem_ops() {
        // Two loads to different addresses; even if the second completes
        // first, commits must arrive in program order.
        struct OrderCheck {
            committed: Vec<u64>,
        }
        impl MemSystem for OrderCheck {
            fn load_issued(&mut self, r: &ExecRecord, now: Cycle, _t: RuuTag) -> (LoadResponse, bool) {
                // First load slow, second fast.
                let lat = if r.mem_addr == 0x4000 { 30 } else { 1 };
                (LoadResponse::Ready(now + lat), true)
            }
            fn mem_committed(&mut self, r: &ExecRecord, _h: Option<bool>, _now: Cycle) {
                self.committed.push(r.mem_addr);
            }
            fn fetch_line(&mut self, _pc: u64, now: Cycle) -> Cycle {
                now
            }
        }
        let prog = [
            Inst::rri(Opcode::Addi, reg::T0, reg::ZERO, 0x4000),
            Inst::load(Opcode::Ld, reg::T1, reg::T0, 0),
            Inst::load(Opcode::Ld, reg::T2, reg::T0, 0x100),
            Inst::halt(),
        ];
        let mut trace = trace_of(&prog);
        let mut core = OooCore::new(OooConfig::default(), 32);
        let mut ms = OrderCheck { committed: Vec::new() };
        run_to_completion(&mut core, &mut ms, &mut trace, |_, _, _| {});
        assert_eq!(ms.committed, vec![0x4000, 0x4100]);
    }

    #[test]
    fn window_capacity_limits_runahead() {
        let mut small = OooConfig::default();
        small.ruu_entries = 4;
        small.lsq_entries = 2;
        let prog: Vec<Inst> = (0..32)
            .map(|k| Inst::rri(Opcode::Addi, reg::T0 + (k % 4) as u8, reg::ZERO, k))
            .chain([Inst::halt()])
            .collect();
        let mut trace = trace_of(&prog);
        let mut core = OooCore::new(small, 32);
        let mut ms = PerfectMem::new();
        run_to_completion(&mut core, &mut ms, &mut trace, |_, _, _| {});
        assert!(core.stats().ruu_full_stalls > 0);
        assert_eq!(core.committed(), 33);
    }

    #[test]
    fn icache_stall_blocks_fetch() {
        struct SlowFetch;
        impl MemSystem for SlowFetch {
            fn load_issued(&mut self, _r: &ExecRecord, now: Cycle, _t: RuuTag) -> (LoadResponse, bool) {
                (LoadResponse::Ready(now + 1), true)
            }
            fn mem_committed(&mut self, _r: &ExecRecord, _h: Option<bool>, _now: Cycle) {}
            fn fetch_line(&mut self, _pc: u64, now: Cycle) -> Cycle {
                now + 10
            }
        }
        let prog: Vec<Inst> =
            (0..8).map(|_| Inst::nop()).chain([Inst::halt()]).collect();
        let mut trace = trace_of(&prog);
        let mut core = OooCore::new(OooConfig::default(), 32);
        let mut ms = SlowFetch;
        let cycles = run_to_completion(&mut core, &mut ms, &mut trace, |_, _, _| {});
        // 9 instructions over 3 lines (32B lines, 8B insts), each line
        // costs 10 cycles.
        assert!(cycles >= 30, "I-miss stalls must accumulate, took {cycles}");
        assert!(core.stats().fetch_stall_cycles > 0);
    }

    #[test]
    fn div_unit_is_unpipelined() {
        // Two independent divides with one divider: serialised.
        let prog = [
            Inst::rri(Opcode::Addi, reg::T0, reg::ZERO, 100),
            Inst::rri(Opcode::Addi, reg::T1, reg::ZERO, 5),
            Inst::rrr(Opcode::Div, reg::T2, reg::T0, reg::T1),
            Inst::rrr(Opcode::Div, reg::T3, reg::T0, reg::T1),
            Inst::halt(),
        ];
        let mut trace = trace_of(&prog);
        let mut core = OooCore::new(OooConfig::default(), 32);
        let mut ms = PerfectMem::new();
        let cycles = run_to_completion(&mut core, &mut ms, &mut trace, |_, _, _| {});
        assert!(cycles >= 24, "two unpipelined 12-cycle divides, took {cycles}");
    }

    #[test]
    fn misprediction_stalls_cost_cycles() {
        use crate::branch::BranchModel;
        // A data-dependent alternating branch: the bimodal predictor
        // gets it wrong constantly, the perfect model never does.
        let prog: Vec<Inst> = {
            let mut v = vec![Inst::rri(Opcode::Addi, reg::S0, reg::ZERO, 64)];
            // if (s0 & 1) skip one instruction, alternating per iteration.
            v.push(Inst::rri(Opcode::Andi, reg::T0, reg::S0, 1));
            v.push(Inst::branch(Opcode::Beq, reg::T0, reg::ZERO, 2));
            v.push(Inst::rri(Opcode::Addi, reg::T1, reg::T1, 1));
            v.push(Inst::rri(Opcode::Addi, reg::S0, reg::S0, -1));
            v.push(Inst::branch(Opcode::Bne, reg::S0, reg::ZERO, -4));
            v.push(Inst::halt());
            v
        };
        let run = |model: BranchModel| {
            let mut trace = trace_of(&prog);
            let mut config = OooConfig::default();
            config.branch = model;
            let mut core = OooCore::new(config, 32);
            let mut ms = PerfectMem::new();
            let cycles = run_to_completion(&mut core, &mut ms, &mut trace, |_, _, _| {});
            (cycles, core.stats().branch_mispredicts, core.committed())
        };
        let (perfect_cycles, perfect_miss, n1) = run(BranchModel::Perfect);
        let (pred_cycles, pred_miss, n2) =
            run(BranchModel::TwoBit { table_bits: 10, penalty: 8 });
        assert_eq!(n1, n2, "same committed stream");
        assert_eq!(perfect_miss, 0);
        assert!(pred_miss > 20, "alternating branch must mispredict, got {pred_miss}");
        assert!(
            pred_cycles > perfect_cycles + 8 * pred_miss / 2,
            "mispredictions must cost cycles: {pred_cycles} vs {perfect_cycles}"
        );
    }

    #[test]
    fn predictable_loops_barely_suffer() {
        use crate::branch::BranchModel;
        let prog: Vec<Inst> = (0..4)
            .map(|k| Inst::rri(Opcode::Addi, reg::T0 + k, reg::ZERO, 1))
            .chain([
                Inst::rri(Opcode::Addi, reg::S0, reg::ZERO, 200),
                Inst::rri(Opcode::Addi, reg::T1, reg::T1, 1),
                Inst::rri(Opcode::Addi, reg::S0, reg::S0, -1),
                Inst::branch(Opcode::Bne, reg::S0, reg::ZERO, -2),
                Inst::halt(),
            ])
            .collect();
        let run = |model: BranchModel| {
            let mut trace = trace_of(&prog);
            let mut config = OooConfig::default();
            config.branch = model;
            let mut core = OooCore::new(config, 32);
            let mut ms = PerfectMem::new();
            run_to_completion(&mut core, &mut ms, &mut trace, |_, _, _| {})
        };
        let perfect = run(BranchModel::Perfect);
        let predicted = run(BranchModel::TwoBit { table_bits: 10, penalty: 8 });
        assert!(
            predicted < perfect + 60,
            "a monotone loop should predict well: {predicted} vs {perfect}"
        );
    }

    #[test]
    fn complete_load_for_retired_tag_is_ignored() {
        let prog = [Inst::nop(), Inst::halt()];
        let mut trace = trace_of(&prog);
        let mut core = OooCore::new(OooConfig::default(), 32);
        let mut ms = PerfectMem::new();
        run_to_completion(&mut core, &mut ms, &mut trace, |_, _, _| {});
        core.complete_load(0, 5); // must not panic or corrupt
        assert!(core.is_done());
    }

    /// Local memory with visible latencies everywhere: loads complete
    /// 12 cycles after issue, new I-lines arrive 9 cycles after the
    /// request — plenty of quiescent gaps for the horizon to skip.
    struct LaggyMem;

    impl MemSystem for LaggyMem {
        fn load_issued(&mut self, _r: &ExecRecord, now: Cycle, _t: RuuTag) -> (LoadResponse, bool) {
            (LoadResponse::Ready(now + 12), false)
        }
        fn mem_committed(&mut self, _r: &ExecRecord, _h: Option<bool>, _now: Cycle) {}
        fn fetch_line(&mut self, _pc: u64, now: Cycle) -> Cycle {
            now + 9
        }
    }

    #[test]
    fn horizon_skipping_matches_naive_stepping() {
        let prog: Vec<Inst> = (0..24i32)
            .flat_map(|k| {
                [
                    Inst::load(Opcode::Ld, reg::T0, reg::ZERO, 0x400 + 8 * k),
                    Inst::rri(Opcode::Addi, reg::T1, reg::T0, 1),
                ]
            })
            .chain([Inst::halt()])
            .collect();
        let tight = OooConfig {
            fetch_width: 2,
            issue_width: 2,
            commit_width: 2,
            ruu_entries: 8,
            lsq_entries: 4,
            ..Default::default()
        };

        // Reference: one step per cycle.
        let mut naive = OooCore::new(tight, 32);
        let mut naive_trace = trace_of(&prog);
        let naive_cycles = {
            let mut now = 0;
            loop {
                naive.step(&mut LaggyMem, &mut naive_trace, now).unwrap();
                if naive.is_done() {
                    break now + 1;
                }
                now += 1;
                assert!(now < 100_000, "runaway simulation");
            }
        };

        // Event-horizon: jump over every cycle the core proves inert.
        let mut skip = OooCore::new(tight, 32);
        let mut skip_trace = trace_of(&prog);
        let mut skips = 0u64;
        let skip_cycles = {
            let mut now = 0;
            loop {
                skip.step(&mut LaggyMem, &mut skip_trace, now).unwrap();
                if skip.is_done() {
                    break now + 1;
                }
                let h = skip.next_event(now);
                assert!(h > now, "horizon must be in the future");
                assert_ne!(h, Cycle::MAX, "local-only core always has a next event");
                if h > now + 1 {
                    skip.advance_to(now, h);
                    skips += 1;
                    now = h;
                } else {
                    now += 1;
                }
                assert!(now < 100_000, "runaway simulation");
            }
        };

        assert!(skips > 0, "the laggy memory must have produced skippable gaps");
        assert_eq!(skip_cycles, naive_cycles, "cycle counts must match exactly");
        assert_eq!(*skip.stats(), *naive.stats(), "all counters must match exactly");
    }
}
