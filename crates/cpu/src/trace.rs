//! Demand-driven committed-instruction stream shared by all nodes.

use crate::exec::{ExecError, ExecRecord, FuncCore};
use ds_mem::MemImage;
use std::collections::VecDeque;

/// A sliding window over the architected execution path of a program.
///
/// All DataScalar nodes run the same program on the same data, and the
/// paper's timing simulations assume perfect branch prediction, so every
/// node's fetch stream is the same sequence of [`ExecRecord`]s. A
/// `TraceSource` materialises that sequence once, on demand, from a
/// [`FuncCore`]; each consumer indexes it by instruction number, and
/// [`TraceSource::trim`] releases records every consumer has passed.
///
/// The *skew* between consumers' cursors is exactly the paper's
/// datathreading: a node running ahead on locally owned operands fetches
/// further into this stream than its peers.
///
/// # Examples
///
/// ```
/// use ds_cpu::{FuncCore, TraceSource};
/// use ds_isa::Inst;
/// use ds_mem::MemImage;
///
/// let mut mem = MemImage::new();
/// mem.write_u64(0x1000, Inst::nop().encode());
/// mem.write_u64(0x1008, Inst::halt().encode());
/// let mut trace = TraceSource::new(FuncCore::new(0x1000), mem);
/// assert!(trace.get(0).unwrap().is_some());
/// assert!(trace.get(1).unwrap().is_some());
/// assert!(trace.get(2).unwrap().is_none(), "past the halt");
/// ```
#[derive(Debug)]
pub struct TraceSource {
    core: FuncCore,
    mem: MemImage,
    window: VecDeque<ExecRecord>,
    /// Instruction number of `window[0]`.
    base: u64,
    /// Set once the functional core halts; records past the end are
    /// `None`.
    end: Option<u64>,
    /// High-water mark of `window.len()` — the worst-case node skew
    /// (datathreading distance) plus in-flight window.
    max_window: usize,
}

impl TraceSource {
    /// Wraps a functional core and its memory image.
    ///
    /// The core should be positioned at the program entry; the image
    /// must already contain the loaded program.
    pub fn new(core: FuncCore, mem: MemImage) -> Self {
        TraceSource { core, mem, window: VecDeque::new(), base: 0, end: None, max_window: 0 }
    }

    /// Returns the record of instruction `idx` (extending the window by
    /// functional execution as needed), or `None` if the program halts
    /// before `idx`.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors (undecodable
    /// instructions).
    ///
    /// # Panics
    ///
    /// Panics if `idx` has already been trimmed away — consumers must
    /// not read behind the trim point.
    pub fn get(&mut self, idx: u64) -> Result<Option<&ExecRecord>, ExecError> {
        assert!(idx >= self.base, "instruction {idx} already trimmed (base {})", self.base);
        while self.end.is_none() && self.base + self.window.len() as u64 <= idx {
            match self.core.step(&mut self.mem)? {
                Some(rec) => self.window.push_back(rec),
                None => self.end = Some(self.base + self.window.len() as u64),
            }
        }
        if self.window.len() > self.max_window {
            self.max_window = self.window.len();
        }
        Ok(self.window.get((idx - self.base) as usize))
    }

    /// Drops all records before `min_idx` (the minimum over all
    /// consumers' cursors).
    pub fn trim(&mut self, min_idx: u64) {
        let n = (min_idx.saturating_sub(self.base) as usize).min(self.window.len());
        if n > 0 {
            self.window.drain(..n);
            self.base += n as u64;
        }
    }

    /// The total length of the committed stream, if the program has
    /// halted within the portion generated so far.
    pub fn known_len(&self) -> Option<u64> {
        self.end
    }

    /// Instructions currently buffered.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// High-water mark of the buffered window over the whole run.
    pub fn max_window_len(&self) -> usize {
        self.max_window
    }

    /// Read access to the final memory image (useful for checking
    /// program results after a run). The image reflects execution up to
    /// the furthest record generated so far.
    pub fn mem(&self) -> &MemImage {
        &self.mem
    }

    /// The functional core (e.g. to inspect final register state).
    pub fn core(&self) -> &FuncCore {
        &self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_isa::{reg, Inst, Opcode};

    fn source(prog: &[Inst]) -> TraceSource {
        let mut mem = MemImage::new();
        for (i, inst) in prog.iter().enumerate() {
            mem.write_u64(0x1000 + 8 * i as u64, inst.encode());
        }
        TraceSource::new(FuncCore::new(0x1000), mem)
    }

    fn counted_loop() -> TraceSource {
        source(&[
            Inst::rri(Opcode::Addi, reg::T0, reg::ZERO, 3),
            Inst::rri(Opcode::Addi, reg::T0, reg::T0, -1),
            Inst::branch(Opcode::Bne, reg::T0, reg::ZERO, -1),
            Inst::halt(),
        ])
    }

    #[test]
    fn random_access_within_window() {
        let mut t = counted_loop();
        // Stream: addi, (addi, bne) x3, halt = 1 + 6 + 1 = 8 records.
        assert_eq!(t.get(7).unwrap().unwrap().inst.op, Opcode::Halt);
        assert_eq!(t.get(0).unwrap().unwrap().inst.op, Opcode::Addi);
        assert!(t.get(8).unwrap().is_none());
        assert_eq!(t.known_len(), Some(8));
    }

    #[test]
    fn trim_releases_memory_but_keeps_future() {
        let mut t = counted_loop();
        t.get(7).unwrap();
        assert_eq!(t.window_len(), 8);
        t.trim(5);
        assert_eq!(t.window_len(), 3);
        assert_eq!(t.get(5).unwrap().unwrap().icount, 5);
    }

    #[test]
    #[should_panic(expected = "already trimmed")]
    fn reading_behind_trim_panics() {
        let mut t = counted_loop();
        t.get(7).unwrap();
        t.trim(5);
        let _ = t.get(2);
    }

    #[test]
    fn two_consumers_with_skew() {
        let mut t = counted_loop();
        let mut a = 0u64;
        let mut b = 0u64;
        // Consumer A runs ahead.
        while t.get(a).unwrap().is_some() {
            a += 1;
        }
        while t.get(b).unwrap().is_some() {
            let rec = *t.get(b).unwrap().unwrap();
            assert_eq!(rec.icount, b);
            b += 1;
            t.trim(b.min(a));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn bad_program_propagates_error() {
        let mut mem = MemImage::new();
        mem.write_u64(0x1000, u64::MAX);
        let mut t = TraceSource::new(FuncCore::new(0x1000), mem);
        assert!(t.get(0).is_err());
    }
}
