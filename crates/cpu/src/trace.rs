//! Demand-driven committed-instruction stream shared by all nodes.

use crate::exec::{ExecError, ExecRecord, FuncCore};
use ds_mem::MemImage;
use std::collections::VecDeque;

/// A sliding window over the architected execution path of a program.
///
/// All DataScalar nodes run the same program on the same data, and the
/// paper's timing simulations assume perfect branch prediction, so every
/// node's fetch stream is the same sequence of [`ExecRecord`]s. A
/// `TraceSource` materialises that sequence once, on demand, from a
/// [`FuncCore`]; each consumer indexes it by instruction number, and
/// [`TraceSource::trim`] releases records every consumer has passed.
///
/// The *skew* between consumers' cursors is exactly the paper's
/// datathreading: a node running ahead on locally owned operands fetches
/// further into this stream than its peers.
///
/// # Examples
///
/// ```
/// use ds_cpu::{FuncCore, TraceSource};
/// use ds_isa::Inst;
/// use ds_mem::MemImage;
///
/// let mut mem = MemImage::new();
/// mem.write_u64(0x1000, Inst::nop().encode());
/// mem.write_u64(0x1008, Inst::halt().encode());
/// let mut trace = TraceSource::new(FuncCore::new(0x1000), mem);
/// assert!(trace.get(0).unwrap().is_some());
/// assert!(trace.get(1).unwrap().is_some());
/// assert!(trace.get(2).unwrap().is_none(), "past the halt");
/// ```
#[derive(Debug)]
pub struct TraceSource {
    core: FuncCore,
    mem: MemImage,
    window: VecDeque<ExecRecord>,
    /// Instruction number of `window[0]`.
    base: u64,
    /// Set once the functional core halts; records past the end are
    /// `None`.
    end: Option<u64>,
    /// High-water mark of `window.len()` — the worst-case node skew
    /// (datathreading distance) plus in-flight window.
    max_window: usize,
}

impl TraceSource {
    /// Wraps a functional core and its memory image.
    ///
    /// The core should be positioned at the program entry; the image
    /// must already contain the loaded program.
    pub fn new(core: FuncCore, mem: MemImage) -> Self {
        TraceSource { core, mem, window: VecDeque::new(), base: 0, end: None, max_window: 0 }
    }

    /// Returns the record of instruction `idx` (extending the window by
    /// functional execution as needed), or `None` if the program halts
    /// before `idx`.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors (undecodable
    /// instructions).
    ///
    /// # Panics
    ///
    /// Panics if `idx` has already been trimmed away — consumers must
    /// not read behind the trim point.
    pub fn get(&mut self, idx: u64) -> Result<Option<&ExecRecord>, ExecError> {
        assert!(idx >= self.base, "instruction {idx} already trimmed (base {})", self.base);
        while self.end.is_none() && self.base + self.window.len() as u64 <= idx {
            match self.core.step(&mut self.mem)? {
                Some(rec) => self.window.push_back(rec),
                None => self.end = Some(self.base + self.window.len() as u64),
            }
        }
        if self.window.len() > self.max_window {
            self.max_window = self.window.len();
        }
        Ok(self.window.get((idx - self.base) as usize))
    }

    /// Extends the window by functional execution until instruction
    /// `idx` is materialised (or the program halts before it), without
    /// touching the high-water mark. The parallel engine pre-extends the
    /// shared trace with this before fanning node stepping out to
    /// worker threads; [`TraceSource::note_peeks`] afterwards accounts
    /// the window growth exactly as the serial engine's demand-driven
    /// [`TraceSource::get`] calls would have.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors (undecodable
    /// instructions).
    pub fn extend_to(&mut self, idx: u64) -> Result<(), ExecError> {
        while self.end.is_none() && self.base + self.window.len() as u64 <= idx {
            match self.core.step(&mut self.mem)? {
                Some(rec) => self.window.push_back(rec),
                None => self.end = Some(self.base + self.window.len() as u64),
            }
        }
        Ok(())
    }

    /// Read-only access to instruction `idx` of a pre-extended window:
    /// `None` past the program's end, the record otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was already trimmed, or was never materialised by
    /// a prior [`TraceSource::extend_to`]/[`TraceSource::get`].
    pub fn get_ready(&self, idx: u64) -> Option<&ExecRecord> {
        assert!(idx >= self.base, "instruction {idx} already trimmed (base {})", self.base);
        let off = (idx - self.base) as usize;
        if off < self.window.len() {
            return Some(&self.window[off]);
        }
        match self.end {
            Some(end) if idx >= end => None,
            // ds-analyze: allow(tp1) documented Panics contract: the parallel engine pre-extends the window for the whole round before workers read it
            _ => panic!("instruction {idx} read beyond the pre-extended window"),
        }
    }

    /// Accounts the furthest instruction index (exclusive) any consumer
    /// peeked this cycle into the window high-water mark, exactly as the
    /// serial engine's per-`get` bookkeeping would have: the serial mark
    /// after a consumer reads `idx` is `min(idx + 1, end) - base`, and
    /// `base` is constant within a cycle (trims happen after stepping),
    /// so the per-cycle maximum over consumers reproduces every serial
    /// growth event.
    pub fn note_peeks(&mut self, peek_end: u64) {
        let capped = match self.end {
            Some(end) => peek_end.min(end),
            None => peek_end,
        };
        let len = capped.saturating_sub(self.base) as usize;
        if len > self.max_window {
            self.max_window = len;
        }
    }

    /// Drops all records before `min_idx` (the minimum over all
    /// consumers' cursors).
    pub fn trim(&mut self, min_idx: u64) {
        let n = (min_idx.saturating_sub(self.base) as usize).min(self.window.len());
        if n > 0 {
            self.window.drain(..n);
            self.base += n as u64;
        }
    }

    /// The total length of the committed stream, if the program has
    /// halted within the portion generated so far.
    pub fn known_len(&self) -> Option<u64> {
        self.end
    }

    /// Instructions currently buffered.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// High-water mark of the buffered window over the whole run.
    pub fn max_window_len(&self) -> usize {
        self.max_window
    }

    /// Read access to the final memory image (useful for checking
    /// program results after a run). The image reflects execution up to
    /// the furthest record generated so far.
    pub fn mem(&self) -> &MemImage {
        &self.mem
    }

    /// The functional core (e.g. to inspect final register state).
    pub fn core(&self) -> &FuncCore {
        &self.core
    }

    /// A read-only [`InstFeed`] over the already-materialised window,
    /// shareable across threads (the parallel engine hands one to each
    /// node after pre-extending the window).
    pub fn ready_window(&self) -> ReadyWindow<'_> {
        ReadyWindow { src: self }
    }
}

/// The fetch stage's instruction supply. The serial engine feeds the
/// out-of-order cores straight from a demand-extended [`TraceSource`];
/// the parallel engine pre-extends the window once per cycle and feeds
/// every node from a shared read-only [`ReadyWindow`].
pub trait InstFeed {
    /// The record of instruction `idx`, or `None` if the program halts
    /// before it.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors.
    fn fetch_record(&mut self, idx: u64) -> Result<Option<ExecRecord>, ExecError>;
}

impl InstFeed for TraceSource {
    #[inline]
    fn fetch_record(&mut self, idx: u64) -> Result<Option<ExecRecord>, ExecError> {
        Ok(self.get(idx)?.copied())
    }
}

/// Read-only view over a pre-extended [`TraceSource`] window; the
/// [`InstFeed`] the parallel engine's worker threads share.
#[derive(Debug, Clone, Copy)]
pub struct ReadyWindow<'a> {
    src: &'a TraceSource,
}

impl InstFeed for ReadyWindow<'_> {
    #[inline]
    fn fetch_record(&mut self, idx: u64) -> Result<Option<ExecRecord>, ExecError> {
        Ok(self.src.get_ready(idx).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_isa::{reg, Inst, Opcode};

    fn source(prog: &[Inst]) -> TraceSource {
        let mut mem = MemImage::new();
        for (i, inst) in prog.iter().enumerate() {
            mem.write_u64(0x1000 + 8 * i as u64, inst.encode());
        }
        TraceSource::new(FuncCore::new(0x1000), mem)
    }

    fn counted_loop() -> TraceSource {
        source(&[
            Inst::rri(Opcode::Addi, reg::T0, reg::ZERO, 3),
            Inst::rri(Opcode::Addi, reg::T0, reg::T0, -1),
            Inst::branch(Opcode::Bne, reg::T0, reg::ZERO, -1),
            Inst::halt(),
        ])
    }

    #[test]
    fn random_access_within_window() {
        let mut t = counted_loop();
        // Stream: addi, (addi, bne) x3, halt = 1 + 6 + 1 = 8 records.
        assert_eq!(t.get(7).unwrap().unwrap().inst.op, Opcode::Halt);
        assert_eq!(t.get(0).unwrap().unwrap().inst.op, Opcode::Addi);
        assert!(t.get(8).unwrap().is_none());
        assert_eq!(t.known_len(), Some(8));
    }

    #[test]
    fn trim_releases_memory_but_keeps_future() {
        let mut t = counted_loop();
        t.get(7).unwrap();
        assert_eq!(t.window_len(), 8);
        t.trim(5);
        assert_eq!(t.window_len(), 3);
        assert_eq!(t.get(5).unwrap().unwrap().icount, 5);
    }

    #[test]
    #[should_panic(expected = "already trimmed")]
    fn reading_behind_trim_panics() {
        let mut t = counted_loop();
        t.get(7).unwrap();
        t.trim(5);
        let _ = t.get(2);
    }

    #[test]
    fn two_consumers_with_skew() {
        let mut t = counted_loop();
        let mut a = 0u64;
        let mut b = 0u64;
        // Consumer A runs ahead.
        while t.get(a).unwrap().is_some() {
            a += 1;
        }
        while t.get(b).unwrap().is_some() {
            let rec = *t.get(b).unwrap().unwrap();
            assert_eq!(rec.icount, b);
            b += 1;
            t.trim(b.min(a));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn extend_then_read_only_matches_demand_gets() {
        let mut demand = counted_loop();
        let mut pre = counted_loop();
        pre.extend_to(9).unwrap();
        assert_eq!(pre.max_window_len(), 0, "extend_to must not move the high-water mark");
        for idx in 0..10u64 {
            let want = demand.get(idx).unwrap().copied();
            let got = pre.get_ready(idx).copied();
            assert_eq!(got, want, "instruction {idx}");
            let mut feed = pre.ready_window();
            assert_eq!(feed.fetch_record(idx).unwrap(), want);
        }
        // note_peeks reproduces the serial high-water accounting: the
        // furthest peek was 10, capped by the 8-record stream.
        pre.note_peeks(10);
        assert_eq!(pre.max_window_len(), demand.max_window_len());
    }

    #[test]
    #[should_panic(expected = "beyond the pre-extended window")]
    fn get_ready_rejects_unmaterialised_reads() {
        let mut t = counted_loop();
        t.extend_to(2).unwrap();
        let _ = t.get_ready(5);
    }

    #[test]
    fn note_peeks_tracks_base_relative_length() {
        let mut t = counted_loop();
        t.extend_to(7).unwrap();
        t.trim(4);
        t.note_peeks(8);
        assert_eq!(t.max_window_len(), 4, "peeked through 8 with base 4");
    }

    #[test]
    fn bad_program_propagates_error() {
        let mut mem = MemImage::new();
        mem.write_u64(0x1000, u64::MAX);
        let mut t = TraceSource::new(FuncCore::new(0x1000), mem);
        assert!(t.get(0).is_err());
    }
}
