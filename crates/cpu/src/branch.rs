//! Branch prediction models.
//!
//! The paper assumes perfect branch prediction ("modern branch
//! predictors are already quite accurate, and we have no way of knowing
//! what prediction techniques will be prevalent in future processors")
//! and its correspondence protocol does not support speculative
//! broadcasts (§4.1). This module keeps that default but adds real
//! predictors so the assumption can be stress-tested: a mispredicted
//! control transfer redirects fetch only after the branch resolves,
//! throttling the run-ahead that datathreading depends on. No wrong
//! path is issued, so the correspondence protocol's no-speculation
//! requirement still holds.

use crate::Cycle;

/// Which fetch-redirection model the core uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchModel {
    /// The paper's assumption: every control transfer is predicted
    /// perfectly; fetch never stalls on branches.
    #[default]
    Perfect,
    /// Static backward-taken/forward-not-taken with a fixed redirect
    /// penalty.
    Static {
        /// Extra cycles after resolution before fetch resumes.
        penalty: Cycle,
    },
    /// Bimodal two-bit saturating counters indexed by PC, plus a
    /// last-target BTB for indirect jumps.
    TwoBit {
        /// log2 of the counter-table size.
        table_bits: u32,
        /// Extra cycles after resolution before fetch resumes.
        penalty: Cycle,
    },
}

impl BranchModel {
    /// The redirect penalty (0 for perfect prediction).
    pub fn penalty(self) -> Cycle {
        match self {
            BranchModel::Perfect => 0,
            BranchModel::Static { penalty } | BranchModel::TwoBit { penalty, .. } => penalty,
        }
    }
}

/// Predictor state for one core.
#[derive(Debug, Clone)]
pub struct Predictor {
    model: BranchModel,
    /// Two-bit saturating counters (TwoBit model).
    counters: Vec<u8>,
    /// Last-target BTB for indirect jumps (pc -> predicted target).
    /// `BTreeMap` so the structure is order-deterministic (d1): the
    /// predictor feeds fetch redirects, which feed simulated state.
    btb: std::collections::BTreeMap<u64, u64>,
    branches: u64,
    mispredicts: u64,
}

impl Predictor {
    /// Builds a predictor for `model`.
    pub fn new(model: BranchModel) -> Self {
        let table = match model {
            BranchModel::TwoBit { table_bits, .. } => vec![1u8; 1 << table_bits],
            _ => Vec::new(),
        };
        Predictor { model, counters: table, btb: std::collections::BTreeMap::new(), branches: 0, mispredicts: 0 }
    }

    /// The model in use.
    pub fn model(&self) -> BranchModel {
        self.model
    }

    /// Conditional branches and indirect jumps seen.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Prediction accuracy in `[0, 1]` (1.0 if no branches yet).
    pub fn accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.branches as f64
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 3) as usize) & (self.counters.len() - 1)
    }

    /// Processes a **conditional branch** at `pc` whose architected
    /// outcome is `taken` toward `target`; returns `true` if the
    /// prediction was correct. Updates all predictor state.
    pub fn predict_conditional(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        self.branches += 1;
        let correct = match self.model {
            BranchModel::Perfect => true,
            BranchModel::Static { .. } => {
                // Backward-taken, forward-not-taken.
                let predict_taken = target < pc;
                predict_taken == taken
            }
            BranchModel::TwoBit { .. } => {
                let idx = self.index(pc);
                let predict_taken = self.counters[idx] >= 2;
                let ctr = &mut self.counters[idx];
                if taken {
                    *ctr = (*ctr + 1).min(3);
                } else {
                    *ctr = ctr.saturating_sub(1);
                }
                predict_taken == taken
            }
        };
        if !correct {
            self.mispredicts += 1;
        }
        correct
    }

    /// Processes an **indirect jump** (`jalr`) at `pc` to `target`;
    /// returns `true` if the BTB predicted the right target. Direct
    /// jumps (`jal`) never mispredict.
    pub fn predict_indirect(&mut self, pc: u64, target: u64) -> bool {
        if self.model == BranchModel::Perfect {
            return true;
        }
        self.branches += 1;
        let correct = self.btb.insert(pc, target) == Some(target);
        if !correct {
            self.mispredicts += 1;
        }
        correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_never_mispredicts() {
        let mut p = Predictor::new(BranchModel::Perfect);
        for i in 0..100 {
            assert!(p.predict_conditional(0x1000, i % 3 == 0, 0x900));
            assert!(p.predict_indirect(0x2000, 0x100 * i));
        }
        assert_eq!(p.mispredicts(), 0);
        assert_eq!(p.accuracy(), 1.0);
    }

    #[test]
    fn static_model_is_btfn() {
        let mut p = Predictor::new(BranchModel::Static { penalty: 8 });
        // Backward taken: correct.
        assert!(p.predict_conditional(0x1000, true, 0x800));
        // Backward not-taken: wrong.
        assert!(!p.predict_conditional(0x1000, false, 0x800));
        // Forward not-taken: correct.
        assert!(p.predict_conditional(0x1000, false, 0x2000));
        assert_eq!(p.branches(), 3);
        assert_eq!(p.mispredicts(), 1);
    }

    #[test]
    fn two_bit_learns_a_loop() {
        let mut p = Predictor::new(BranchModel::TwoBit { table_bits: 10, penalty: 8 });
        // A loop branch taken 50 times then falling through: the
        // counters should converge after at most two takens.
        let mut wrong = 0;
        for i in 0..50 {
            if !p.predict_conditional(0x1000, true, 0x800) {
                wrong += 1;
            }
            let _ = i;
        }
        assert!(wrong <= 1, "counter failed to learn ({wrong} wrong)");
        assert!(!p.predict_conditional(0x1000, false, 0x800), "exit mispredicts");
        assert!(p.accuracy() > 0.9);
    }

    #[test]
    fn btb_learns_stable_indirect_targets() {
        let mut p = Predictor::new(BranchModel::TwoBit { table_bits: 8, penalty: 8 });
        assert!(!p.predict_indirect(0x1000, 0x4000), "cold BTB misses");
        assert!(p.predict_indirect(0x1000, 0x4000), "stable target hits");
        assert!(!p.predict_indirect(0x1000, 0x5000), "changed target misses");
    }

    #[test]
    fn penalties() {
        assert_eq!(BranchModel::Perfect.penalty(), 0);
        assert_eq!(BranchModel::Static { penalty: 5 }.penalty(), 5);
        assert_eq!(BranchModel::TwoBit { table_bits: 4, penalty: 7 }.penalty(), 7);
    }
}
