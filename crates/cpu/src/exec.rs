//! The functional (architectural) DS-1 interpreter.

use ds_isa::{reg, Inst, Opcode, INST_BYTES};
use ds_mem::MemImage;
use std::fmt;

/// The record of one architecturally executed instruction.
///
/// This is what flows from functional execution into the timing models:
/// the decoded instruction plus everything the timing layer needs that
/// only execution can resolve (effective address, branch direction,
/// next PC).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecRecord {
    /// Zero-based index in the committed instruction stream.
    pub icount: u64,
    /// Byte address the instruction was fetched from.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Address of the next instruction on the architected path.
    pub next_pc: u64,
    /// For control transfers: whether the transfer was taken.
    pub taken: bool,
    /// Effective address for loads/stores (0 otherwise).
    pub mem_addr: u64,
    /// Access size in bytes for loads/stores (0 otherwise).
    pub mem_bytes: u64,
}

impl ExecRecord {
    /// True when this record is a load.
    pub fn is_load(&self) -> bool {
        self.inst.op.is_load()
    }

    /// True when this record is a store.
    pub fn is_store(&self) -> bool {
        self.inst.op.is_store()
    }
}

/// A functional execution error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The word at `pc` did not decode.
    BadInstruction {
        /// Fetch address.
        pc: u64,
        /// Underlying decode failure.
        cause: ds_isa::DecodeError,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BadInstruction { pc, cause } => {
                write!(f, "bad instruction at {pc:#x}: {cause}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// The architectural state of one DS-1 hardware context.
///
/// Execution semantics notes:
///
/// * integer arithmetic wraps; division by zero yields 0 and remainder
///   by zero yields the dividend (no traps — the simulator must stay
///   deterministic);
/// * shift amounts are masked to 6 bits;
/// * `addi`/`slti` sign-extend their immediate, `andi`/`ori`/`xori`
///   zero-extend it (MIPS convention);
/// * `lui` places the zero-extended immediate in bits 63..32;
/// * writes to `r0` are discarded.
///
/// # Examples
///
/// ```
/// use ds_cpu::FuncCore;
/// use ds_isa::{reg, Inst, Opcode};
/// use ds_mem::MemImage;
///
/// let mut mem = MemImage::new();
/// let prog = [
///     Inst::rri(Opcode::Addi, reg::T0, reg::ZERO, 21),
///     Inst::rrr(Opcode::Add, reg::T1, reg::T0, reg::T0),
///     Inst::halt(),
/// ];
/// for (i, inst) in prog.iter().enumerate() {
///     mem.write_u64(0x1000 + 8 * i as u64, inst.encode());
/// }
/// let mut cpu = FuncCore::new(0x1000);
/// while !cpu.halted() {
///     cpu.step(&mut mem).unwrap();
/// }
/// assert_eq!(cpu.ireg(reg::T1), 42);
/// ```
#[derive(Debug, Clone)]
pub struct FuncCore {
    pc: u64,
    iregs: [u64; 32],
    fregs: [f64; 32],
    halted: bool,
    icount: u64,
    /// Direct-mapped decode cache, PC-indexed: the fetch stream re-visits
    /// the same instructions constantly, so decoding once per line beats
    /// re-reading and re-decoding the word every retired instruction.
    /// Stores into cached text invalidate the overlapped slots.
    dcache: Vec<DecodeSlot>,
}

#[derive(Debug, Clone, Copy)]
struct DecodeSlot {
    /// Cached PC, or [`NO_PC`] when empty.
    pc: u64,
    inst: Inst,
}

/// Decode-cache empty sentinel — never a real (8-byte aligned) PC.
const NO_PC: u64 = u64::MAX;

/// Decode-cache entries; covers 32 KiB of text, power of two.
const DCACHE_ENTRIES: usize = 4096;

#[inline]
fn dcache_index(pc: u64) -> usize {
    (pc / INST_BYTES) as usize & (DCACHE_ENTRIES - 1)
}

impl FuncCore {
    /// Creates a context with `pc` at `entry` and all registers zero.
    pub fn new(entry: u64) -> Self {
        FuncCore {
            pc: entry,
            iregs: [0; 32],
            fregs: [0.0; 32],
            halted: false,
            icount: 0,
            dcache: vec![DecodeSlot { pc: NO_PC, inst: Inst::nop() }; DCACHE_ENTRIES],
        }
    }

    /// Creates a context with the stack pointer initialised.
    pub fn with_stack(entry: u64, stack_top: u64) -> Self {
        let mut c = Self::new(entry);
        c.iregs[reg::SP as usize] = stack_top;
        c
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// True once a `halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Reads integer register `r`.
    pub fn ireg(&self, r: u8) -> u64 {
        self.iregs[r as usize]
    }

    /// Writes integer register `r` (writes to `r0` are dropped).
    pub fn set_ireg(&mut self, r: u8, v: u64) {
        if r != 0 {
            self.iregs[r as usize] = v;
        }
    }

    /// Reads floating-point register `r`.
    pub fn freg(&self, r: u8) -> f64 {
        self.fregs[r as usize]
    }

    /// Writes floating-point register `r`.
    pub fn set_freg(&mut self, r: u8, v: f64) {
        self.fregs[r as usize] = v;
    }

    /// Executes one instruction, mutating architectural state and
    /// memory, and returns its [`ExecRecord`]. Returns `None` once
    /// halted.
    ///
    /// # Errors
    ///
    /// [`ExecError::BadInstruction`] if the word at the PC does not
    /// decode — the functional machine does not execute garbage.
    pub fn step(&mut self, mem: &mut MemImage) -> Result<Option<ExecRecord>, ExecError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let slot = dcache_index(pc);
        let inst = if self.dcache[slot].pc == pc {
            self.dcache[slot].inst
        } else {
            let word = mem.read_u64(pc);
            let inst =
                Inst::decode(word).map_err(|cause| ExecError::BadInstruction { pc, cause })?;
            self.dcache[slot] = DecodeSlot { pc, inst };
            inst
        };
        let mut next_pc = pc + INST_BYTES;
        let mut taken = false;
        let mut mem_addr = 0u64;
        let mut mem_bytes = 0u64;
        let rs = self.iregs[inst.rs as usize];
        let rt = self.iregs[inst.rt as usize];
        let frs = self.fregs[inst.rs as usize];
        let frt = self.fregs[inst.rt as usize];
        let simm = inst.imm as i64;
        let zimm = inst.imm as u32 as u64;
        use Opcode::*;
        match inst.op {
            Add => self.set_ireg(inst.rd, rs.wrapping_add(rt)),
            Sub => self.set_ireg(inst.rd, rs.wrapping_sub(rt)),
            Mul => self.set_ireg(inst.rd, (rs as i64).wrapping_mul(rt as i64) as u64),
            Div => {
                let v = if rt == 0 { 0 } else { (rs as i64).wrapping_div(rt as i64) as u64 };
                self.set_ireg(inst.rd, v);
            }
            Rem => {
                let v = if rt == 0 { rs } else { (rs as i64).wrapping_rem(rt as i64) as u64 };
                self.set_ireg(inst.rd, v);
            }
            And => self.set_ireg(inst.rd, rs & rt),
            Or => self.set_ireg(inst.rd, rs | rt),
            Xor => self.set_ireg(inst.rd, rs ^ rt),
            Nor => self.set_ireg(inst.rd, !(rs | rt)),
            Sll => self.set_ireg(inst.rd, rs.wrapping_shl(rt as u32 & 63)),
            Srl => self.set_ireg(inst.rd, rs.wrapping_shr(rt as u32 & 63)),
            Sra => self.set_ireg(inst.rd, ((rs as i64).wrapping_shr(rt as u32 & 63)) as u64),
            Slt => self.set_ireg(inst.rd, ((rs as i64) < (rt as i64)) as u64),
            Sltu => self.set_ireg(inst.rd, (rs < rt) as u64),
            Addi => self.set_ireg(inst.rd, rs.wrapping_add_signed(simm)),
            Andi => self.set_ireg(inst.rd, rs & zimm),
            Ori => self.set_ireg(inst.rd, rs | zimm),
            Xori => self.set_ireg(inst.rd, rs ^ zimm),
            Slti => self.set_ireg(inst.rd, ((rs as i64) < simm) as u64),
            Slli => self.set_ireg(inst.rd, rs.wrapping_shl(inst.imm as u32 & 63)),
            Srli => self.set_ireg(inst.rd, rs.wrapping_shr(inst.imm as u32 & 63)),
            Srai => {
                self.set_ireg(inst.rd, ((rs as i64).wrapping_shr(inst.imm as u32 & 63)) as u64)
            }
            Lui => self.set_ireg(inst.rd, zimm << 32),
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => {
                mem_addr = rs.wrapping_add_signed(simm);
                // ds-analyze: allow(tp1) every opcode in this match arm defines mem_width() in the ISA table; drift is caught by ds-lint x1
                mem_bytes = inst.op.mem_width().expect("load has width").bytes();
                match inst.op {
                    Lb => self.set_ireg(inst.rd, mem.read_u8(mem_addr) as i8 as i64 as u64),
                    Lbu => self.set_ireg(inst.rd, mem.read_u8(mem_addr) as u64),
                    Lh => self.set_ireg(inst.rd, mem.read_u16(mem_addr) as i16 as i64 as u64),
                    Lhu => self.set_ireg(inst.rd, mem.read_u16(mem_addr) as u64),
                    Lw => self.set_ireg(inst.rd, mem.read_u32(mem_addr) as i32 as i64 as u64),
                    Lwu => self.set_ireg(inst.rd, mem.read_u32(mem_addr) as u64),
                    Ld => self.set_ireg(inst.rd, mem.read_u64(mem_addr)),
                    Fld => self.fregs[inst.rd as usize] = mem.read_f64(mem_addr),
                    _ => unreachable!(),
                }
            }
            Sb | Sh | Sw | Sd | Fsd => {
                mem_addr = rs.wrapping_add_signed(simm);
                // ds-analyze: allow(tp1) every opcode in this match arm defines mem_width() in the ISA table; drift is caught by ds-lint x1
                mem_bytes = inst.op.mem_width().expect("store has width").bytes();
                let value = self.iregs[inst.rd as usize];
                match inst.op {
                    Sb => mem.write_u8(mem_addr, value as u8),
                    Sh => mem.write_u16(mem_addr, value as u16),
                    Sw => mem.write_u32(mem_addr, value as u32),
                    Sd => mem.write_u64(mem_addr, value),
                    Fsd => mem.write_f64(mem_addr, self.fregs[inst.rd as usize]),
                    _ => unreachable!(),
                }
                // Self-modifying stores: drop any cached decode of the
                // (at most two) instruction slots this write overlaps.
                let first = mem_addr & !(INST_BYTES - 1);
                let mut a = first;
                while a < mem_addr + mem_bytes {
                    let s = dcache_index(a);
                    if self.dcache[s].pc == a {
                        self.dcache[s].pc = NO_PC;
                    }
                    a += INST_BYTES;
                }
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                taken = match inst.op {
                    Beq => rs == rt,
                    Bne => rs != rt,
                    Blt => (rs as i64) < (rt as i64),
                    Bge => (rs as i64) >= (rt as i64),
                    Bltu => rs < rt,
                    Bgeu => rs >= rt,
                    _ => unreachable!(),
                };
                if taken {
                    next_pc = inst.branch_target(pc);
                }
            }
            Jal => {
                self.set_ireg(inst.rd, pc + INST_BYTES);
                next_pc = inst.imm as u32 as u64;
                taken = true;
            }
            Jalr => {
                // Read the target before the link write in case rd == rs.
                next_pc = rs;
                self.set_ireg(inst.rd, pc + INST_BYTES);
                taken = true;
            }
            Fadd => self.fregs[inst.rd as usize] = frs + frt,
            Fsub => self.fregs[inst.rd as usize] = frs - frt,
            Fmul => self.fregs[inst.rd as usize] = frs * frt,
            Fdiv => self.fregs[inst.rd as usize] = frs / frt,
            Fsqrt => self.fregs[inst.rd as usize] = frs.sqrt(),
            Fmov => self.fregs[inst.rd as usize] = frs,
            Fneg => self.fregs[inst.rd as usize] = -frs,
            Fabs => self.fregs[inst.rd as usize] = frs.abs(),
            Feq => self.set_ireg(inst.rd, (frs == frt) as u64),
            Flt => self.set_ireg(inst.rd, (frs < frt) as u64),
            Fle => self.set_ireg(inst.rd, (frs <= frt) as u64),
            Fcvtdw => self.fregs[inst.rd as usize] = rs as i64 as f64,
            Fcvtwd => self.set_ireg(inst.rd, frs as i64 as u64),
            Halt => {
                self.halted = true;
                next_pc = pc;
            }
            Nop => {}
        }
        let rec = ExecRecord {
            icount: self.icount,
            pc,
            inst,
            next_pc,
            taken,
            mem_addr,
            mem_bytes,
        };
        self.pc = next_pc;
        self.icount += 1;
        Ok(Some(rec))
    }

    /// Runs until halt or until `max_insts` more instructions execute.
    /// Returns the number of instructions executed by this call.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from [`FuncCore::step`].
    pub fn run(&mut self, mem: &mut MemImage, max_insts: u64) -> Result<u64, ExecError> {
        let mut n = 0;
        while n < max_insts {
            if self.step(mem)?.is_none() {
                break;
            }
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_isa::reg::{RA, T0, T1, T2, ZERO};

    fn load_prog(mem: &mut MemImage, base: u64, prog: &[Inst]) {
        for (i, inst) in prog.iter().enumerate() {
            mem.write_u64(base + 8 * i as u64, inst.encode());
        }
    }

    fn run_prog(prog: &[Inst]) -> FuncCore {
        let mut mem = MemImage::new();
        load_prog(&mut mem, 0x1000, prog);
        let mut cpu = FuncCore::new(0x1000);
        cpu.run(&mut mem, 10_000).unwrap();
        assert!(cpu.halted(), "program should halt");
        cpu
    }

    #[test]
    fn arithmetic_basics() {
        let cpu = run_prog(&[
            Inst::rri(Opcode::Addi, T0, ZERO, 7),
            Inst::rri(Opcode::Addi, T1, ZERO, -3),
            Inst::rrr(Opcode::Add, T2, T0, T1),
            Inst::halt(),
        ]);
        assert_eq!(cpu.ireg(T2), 4);
    }

    #[test]
    fn division_by_zero_is_defined() {
        let cpu = run_prog(&[
            Inst::rri(Opcode::Addi, T0, ZERO, 10),
            Inst::rrr(Opcode::Div, T1, T0, ZERO),
            Inst::rrr(Opcode::Rem, T2, T0, ZERO),
            Inst::halt(),
        ]);
        assert_eq!(cpu.ireg(T1), 0, "x/0 == 0");
        assert_eq!(cpu.ireg(T2), 10, "x%0 == x");
    }

    #[test]
    fn signed_vs_unsigned_compare() {
        let cpu = run_prog(&[
            Inst::rri(Opcode::Addi, T0, ZERO, -1),
            Inst::rri(Opcode::Addi, T1, ZERO, 1),
            Inst::rrr(Opcode::Slt, T2, T0, T1),  // -1 < 1 signed
            Inst::rrr(Opcode::Sltu, reg::T3, T0, T1), // MAX < 1 unsigned? no
            Inst::halt(),
        ]);
        assert_eq!(cpu.ireg(T2), 1);
        assert_eq!(cpu.ireg(reg::T3), 0);
    }

    #[test]
    fn logical_immediates_zero_extend() {
        let cpu = run_prog(&[
            Inst::rri(Opcode::Addi, T0, ZERO, -1), // all ones
            Inst::rri(Opcode::Andi, T1, T0, -1),   // imm 0xffff_ffff zero-extended
            Inst::halt(),
        ]);
        assert_eq!(cpu.ireg(T1), 0xffff_ffff);
    }

    #[test]
    fn lui_ori_builds_wide_constants() {
        let cpu = run_prog(&[
            Inst::rri(Opcode::Lui, T0, ZERO, 0x1234_5678u32 as i32),
            Inst::rri(Opcode::Ori, T0, T0, 0x9abc_def0u32 as i32),
            Inst::halt(),
        ]);
        assert_eq!(cpu.ireg(T0), 0x1234_5678_9abc_def0);
    }

    #[test]
    fn loads_sign_and_zero_extend() {
        let mut mem = MemImage::new();
        mem.write_u8(0x2000, 0x80);
        mem.write_u16(0x2002, 0x8000);
        mem.write_u32(0x2004, 0x8000_0000);
        load_prog(
            &mut mem,
            0x1000,
            &[
                Inst::rri(Opcode::Addi, T0, ZERO, 0x2000),
                Inst::load(Opcode::Lb, T1, T0, 0),
                Inst::load(Opcode::Lbu, T2, T0, 0),
                Inst::load(Opcode::Lh, reg::T3, T0, 2),
                Inst::load(Opcode::Lhu, reg::T4, T0, 2),
                Inst::load(Opcode::Lw, reg::T5, T0, 4),
                Inst::load(Opcode::Lwu, reg::T6, T0, 4),
                Inst::halt(),
            ],
        );
        let mut cpu = FuncCore::new(0x1000);
        cpu.run(&mut mem, 100).unwrap();
        assert_eq!(cpu.ireg(T1), (-128i64) as u64);
        assert_eq!(cpu.ireg(T2), 128);
        assert_eq!(cpu.ireg(reg::T3), (-32768i64) as u64);
        assert_eq!(cpu.ireg(reg::T4), 32768);
        assert_eq!(cpu.ireg(reg::T5), 0x8000_0000u32 as i32 as i64 as u64);
        assert_eq!(cpu.ireg(reg::T6), 0x8000_0000);
    }

    #[test]
    fn store_load_roundtrip_and_record() {
        let mut mem = MemImage::new();
        load_prog(
            &mut mem,
            0x1000,
            &[
                Inst::rri(Opcode::Addi, T0, ZERO, 0x3000),
                Inst::rri(Opcode::Addi, T1, ZERO, 99),
                Inst::store(Opcode::Sd, T1, T0, 8),
                Inst::load(Opcode::Ld, T2, T0, 8),
                Inst::halt(),
            ],
        );
        let mut cpu = FuncCore::new(0x1000);
        cpu.step(&mut mem).unwrap();
        cpu.step(&mut mem).unwrap();
        let st = cpu.step(&mut mem).unwrap().unwrap();
        assert!(st.is_store());
        assert_eq!(st.mem_addr, 0x3008);
        assert_eq!(st.mem_bytes, 8);
        let ld = cpu.step(&mut mem).unwrap().unwrap();
        assert!(ld.is_load());
        assert_eq!(ld.mem_addr, 0x3008);
        assert_eq!(cpu.ireg(T2), 99);
    }

    #[test]
    fn branch_loop_counts() {
        // t0 = 5; loop: t1 += t0; t0 -= 1; bne t0, zero, loop
        let cpu = run_prog(&[
            Inst::rri(Opcode::Addi, T0, ZERO, 5),
            Inst::rrr(Opcode::Add, T1, T1, T0),
            Inst::rri(Opcode::Addi, T0, T0, -1),
            Inst::branch(Opcode::Bne, T0, ZERO, -2),
            Inst::halt(),
        ]);
        assert_eq!(cpu.ireg(T1), 15);
    }

    #[test]
    fn jal_links_and_jalr_returns() {
        // 0x1000: jal ra, 0x1018 ; 0x1008: halt ; 0x1010: (skipped)
        // 0x1018: addi t0, zero, 5 ; 0x1020: jalr zero, ra
        let mut mem = MemImage::new();
        load_prog(
            &mut mem,
            0x1000,
            &[
                Inst::jal(RA, 0x1018),
                Inst::halt(),
                Inst::nop(),
                Inst::rri(Opcode::Addi, T0, ZERO, 5),
                Inst::jalr(ZERO, RA),
            ],
        );
        let mut cpu = FuncCore::new(0x1000);
        cpu.run(&mut mem, 100).unwrap();
        assert!(cpu.halted());
        assert_eq!(cpu.ireg(T0), 5);
        assert_eq!(cpu.ireg(RA), 0x1008);
    }

    #[test]
    fn jalr_with_same_link_and_target_register() {
        // jalr t0, t0 must jump to the OLD t0.
        let mut mem = MemImage::new();
        load_prog(
            &mut mem,
            0x1000,
            &[
                Inst::rri(Opcode::Addi, T0, ZERO, 0x1018),
                Inst::jalr(T0, T0),
                Inst::nop(),
                Inst::halt(), // 0x1018
            ],
        );
        let mut cpu = FuncCore::new(0x1000);
        cpu.run(&mut mem, 10).unwrap();
        assert!(cpu.halted());
        assert_eq!(cpu.ireg(T0), 0x1010, "link value");
    }

    #[test]
    fn fp_pipeline() {
        let mut mem = MemImage::new();
        mem.write_f64(0x2000, 2.0);
        mem.write_f64(0x2008, 8.0);
        load_prog(
            &mut mem,
            0x1000,
            &[
                Inst::rri(Opcode::Addi, T0, ZERO, 0x2000),
                Inst::load(Opcode::Fld, 1, T0, 0),
                Inst::load(Opcode::Fld, 2, T0, 8),
                Inst::rrr(Opcode::Fadd, 3, 1, 2),   // 10
                Inst::rrr(Opcode::Fmul, 4, 1, 2),   // 16
                Inst::rrr(Opcode::Fdiv, 5, 2, 1),   // 4
                Inst::rrr(Opcode::Fsqrt, 6, 5, 0),  // 2
                Inst::rrr(Opcode::Flt, T1, 1, 2),   // 1
                Inst::store(Opcode::Fsd, 3, T0, 16),
                Inst::halt(),
            ],
        );
        let mut cpu = FuncCore::new(0x1000);
        cpu.run(&mut mem, 100).unwrap();
        assert_eq!(cpu.freg(3), 10.0);
        assert_eq!(cpu.freg(4), 16.0);
        assert_eq!(cpu.freg(5), 4.0);
        assert_eq!(cpu.freg(6), 2.0);
        assert_eq!(cpu.ireg(T1), 1);
        assert_eq!(mem.read_f64(0x2010), 10.0);
    }

    #[test]
    fn conversions() {
        let cpu = run_prog(&[
            Inst::rri(Opcode::Addi, T0, ZERO, -7),
            Inst::rri(Opcode::Fcvtdw, 1, T0, 0),
            Inst::rri(Opcode::Fcvtwd, T1, 1, 0),
            Inst::halt(),
        ]);
        assert_eq!(cpu.freg(1), -7.0);
        assert_eq!(cpu.ireg(T1), (-7i64) as u64);
    }

    #[test]
    fn r0_is_immutable() {
        let cpu = run_prog(&[Inst::rri(Opcode::Addi, ZERO, ZERO, 42), Inst::halt()]);
        assert_eq!(cpu.ireg(ZERO), 0);
    }

    #[test]
    fn halted_core_steps_to_none() {
        let mut mem = MemImage::new();
        load_prog(&mut mem, 0x1000, &[Inst::halt()]);
        let mut cpu = FuncCore::new(0x1000);
        assert!(cpu.step(&mut mem).unwrap().is_some());
        assert!(cpu.step(&mut mem).unwrap().is_none());
        assert_eq!(cpu.icount(), 1);
    }

    #[test]
    fn bad_instruction_errors() {
        let mut mem = MemImage::new();
        mem.write_u64(0x1000, u64::MAX);
        let mut cpu = FuncCore::new(0x1000);
        let err = cpu.step(&mut mem).unwrap_err();
        assert!(matches!(err, ExecError::BadInstruction { pc: 0x1000, .. }));
        assert!(err.to_string().contains("0x1000"));
    }

    #[test]
    fn records_number_the_stream() {
        let mut mem = MemImage::new();
        load_prog(&mut mem, 0x1000, &[Inst::nop(), Inst::nop(), Inst::halt()]);
        let mut cpu = FuncCore::new(0x1000);
        for want in 0..3 {
            let rec = cpu.step(&mut mem).unwrap().unwrap();
            assert_eq!(rec.icount, want);
            assert_eq!(rec.pc, 0x1000 + 8 * want);
        }
    }
}
