//! Property tests over the out-of-order core: whatever the memory
//! system's timing does, the core must commit exactly the functional
//! instruction stream, in order, exactly once.

use ds_cpu::{
    Cycle, ExecRecord, FuncCore, LoadResponse, MemSystem, OooConfig, OooCore, RuuTag, TraceSource,
};
use ds_isa::{reg, Inst, Opcode};
use ds_mem::MemImage;
use proptest::prelude::*;

/// A memory system with proptest-chosen per-load latencies, a mix of
/// `Ready` and `Pending` responses, and commit-order checking.
struct ChaoticMem {
    latencies: Vec<u64>,
    next: usize,
    pending: Vec<(RuuTag, Cycle)>,
    committed_order: Vec<u64>,
}

impl MemSystem for ChaoticMem {
    fn load_issued(&mut self, _r: &ExecRecord, now: Cycle, tag: RuuTag) -> (LoadResponse, bool) {
        let lat = self.latencies[self.next % self.latencies.len()];
        self.next += 1;
        if lat % 2 == 0 {
            (LoadResponse::Ready(now + 1 + lat), true)
        } else {
            self.pending.push((tag, now + 1 + lat));
            (LoadResponse::Pending, false)
        }
    }

    fn mem_committed(&mut self, r: &ExecRecord, _h: Option<bool>, _now: Cycle) {
        self.committed_order.push(r.icount);
    }

    fn fetch_line(&mut self, _pc: u64, now: Cycle) -> Cycle {
        now
    }
}

/// Builds a program of interleaved ALU ops, loads, stores and short
/// loops — structured to halt.
fn build_program(ops: &[(u8, u8, i32)], loops: u8) -> (TraceSource, u64) {
    let mut mem = MemImage::new();
    let mut insts: Vec<Inst> = Vec::new();
    insts.push(Inst::rri(Opcode::Addi, reg::S0, reg::ZERO, i32::from(loops).max(1)));
    let top = insts.len();
    for &(kind, r, v) in ops {
        let r = 4 + (r % 16); // a0..t9, keeping s0 for the loop
        match kind % 4 {
            0 => insts.push(Inst::rri(Opcode::Addi, r, r, v)),
            1 => insts.push(Inst::rrr(Opcode::Xor, r, r, 4 + ((r + 1) % 16))),
            2 => {
                insts.push(Inst::rri(Opcode::Addi, reg::K2, reg::ZERO, 0x8000 + (v & 0xff0)));
                insts.push(Inst::load(Opcode::Ld, r, reg::K2, 0));
            }
            _ => {
                insts.push(Inst::rri(Opcode::Addi, reg::K2, reg::ZERO, 0x8000 + (v & 0xff0)));
                insts.push(Inst::store(Opcode::Sd, r, reg::K2, 0));
            }
        }
    }
    insts.push(Inst::rri(Opcode::Addi, reg::S0, reg::S0, -1));
    let off = top as i32 - insts.len() as i32;
    insts.push(Inst::branch(Opcode::Bne, reg::S0, reg::ZERO, off));
    insts.push(Inst::halt());
    for (i, inst) in insts.iter().enumerate() {
        mem.write_u64(0x1_0000 + 8 * i as u64, inst.encode());
    }
    // Count the stream functionally first.
    let mut probe = FuncCore::new(0x1_0000);
    let mut probe_mem = mem.clone();
    probe.run(&mut probe_mem, 10_000_000).expect("functional run");
    assert!(probe.halted());
    (TraceSource::new(FuncCore::new(0x1_0000), mem), probe.icount())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn core_commits_the_exact_functional_stream(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), 0i32..4000), 1..30),
        loops in 1u8..6,
        latencies in prop::collection::vec(0u64..60, 1..8),
        ruu_exp in 2u32..8,
    ) {
        let (mut trace, want) = build_program(&ops, loops);
        let mut config = OooConfig::default();
        config.ruu_entries = 1 << ruu_exp;
        config.lsq_entries = ((1 << ruu_exp) / 2).max(1);
        let mut core = OooCore::new(config, 32);
        let mut ms = ChaoticMem {
            latencies,
            next: 0,
            pending: Vec::new(),
            committed_order: Vec::new(),
        };
        let mut now = 0u64;
        while !core.is_done() {
            core.step(&mut ms, &mut trace, now).expect("steps");
            let due: Vec<(RuuTag, Cycle)> =
                ms.pending.iter().copied().filter(|&(_, at)| at <= now).collect();
            ms.pending.retain(|&(_, at)| at > now);
            for (tag, at) in due {
                core.complete_load(tag, at.max(now + 1));
            }
            now += 1;
            prop_assert!(now < 3_000_000, "core wedged at {} commits", core.committed());
        }
        prop_assert_eq!(core.committed(), want);
        // Memory operations committed in strictly increasing program order.
        prop_assert!(
            ms.committed_order.windows(2).all(|w| w[0] < w[1]),
            "mem ops committed out of order"
        );
    }

    #[test]
    fn commit_count_is_independent_of_memory_timing(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), 0i32..4000), 1..20),
        loops in 1u8..4,
    ) {
        let run = |lats: Vec<u64>| {
            let (mut trace, _) = build_program(&ops, loops);
            let mut core = OooCore::new(OooConfig::default(), 32);
            let mut ms = ChaoticMem {
                latencies: lats,
                next: 0,
                pending: Vec::new(),
                committed_order: Vec::new(),
            };
            let mut now = 0u64;
            while !core.is_done() && now < 3_000_000 {
                core.step(&mut ms, &mut trace, now).expect("steps");
                let due: Vec<(RuuTag, Cycle)> =
                    ms.pending.iter().copied().filter(|&(_, at)| at <= now).collect();
                ms.pending.retain(|&(_, at)| at > now);
                for (tag, at) in due {
                    core.complete_load(tag, at.max(now + 1));
                }
                now += 1;
            }
            core.committed()
        };
        prop_assert_eq!(run(vec![0]), run(vec![57, 3, 44]));
    }
}
