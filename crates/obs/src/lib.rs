//! `ds-obs`: the observability layer of the DataScalar workspace.
//!
//! The simulation crates report *what* happened through aggregate
//! counters (`NodeStats`, `BusStats`); this crate records *when* —
//! cycle-stamped [`Event`]s pushed through a [`Probe`] into
//! pre-allocated per-component [`EventRing`]s. Three consumers sit on
//! top of the event stream:
//!
//! * [`perfetto::trace_json`] renders rings as a Chrome trace-event /
//!   Perfetto JSON timeline (per-node broadcast, BSHR, DCUB and commit
//!   tracks);
//! * [`MetricsReport`] derives `ds-stats` histograms — broadcast
//!   latency, BSHR occupancy, datathread run lengths — carried on
//!   `RunResult`;
//! * [`json`] is a minimal parser used to validate emitted reports and
//!   traces without external dependencies.
//!
//! # The zero-cost guarantee
//!
//! [`Probe`] has two implementations: [`Recorder`] (a ring buffer) and
//! [`NoopProbe`] (a zero-sized type whose `record` is an inlined empty
//! default). Consumer crates hold a `Probe` alias switched by their own
//! `obs` cargo feature, so with the feature off every call site
//! monomorphises against the ZST and compiles to nothing — no branch,
//! no field, no cache pressure. With the feature on, recording is a
//! bounds-free slot write into a buffer allocated at construction: the
//! cycle loop still allocates nothing (ds-lint rule a1 polices the
//! recorder in `ring.rs` like any other hot module).

pub mod account;
pub mod critpath;
pub mod json;
pub mod perfetto;
mod ring;
pub mod timeline;

pub use account::{
    top_hot_pcs, CycleAccount, HotPc, PcProfile, PcStallKind, StallBucket, BUCKET_COUNT,
};
pub use critpath::{
    CritNode, CritPathNodeReport, CritPathReport, CritWindow, EdgeClass, EdgeKind, FillKind,
};
pub use ring::{EventRing, Recorder};
pub use timeline::{
    segment_phases, IntervalRing, IntervalSample, Phase, TimelineNodeReport, TimelineReport,
    SAMPLE_INTERVAL,
};

use ds_stats::Histogram;

/// A simulated core-clock cycle count (mirrors `ds_core::Cycle`; kept
/// local so the dependency points the other way).
pub type Cycle = u64;

/// Default [`EventRing`] capacity: big enough to hold the interesting
/// tail of a full-budget Figure 7 run, small enough (~16 K events,
/// ~0.5 MiB) that an instrumented 4-node system stays cheap.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

/// What happened. Field meanings:
///
/// * `line` — the line-aligned address the event concerns;
/// * `occ` — the structure's occupancy *after* the operation;
/// * `latency` — arrival cycle minus send-queue cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An ESP broadcast entered the sender's output queue.
    BroadcastSend {
        /// Line broadcast.
        line: u64,
    },
    /// A broadcast arrived at a consumer node.
    BroadcastArrive {
        /// Line delivered.
        line: u64,
        /// Core cycles from send-queue entry to arrival.
        latency: u64,
    },
    /// A remote load blocked: a BSHR wait entry was allocated.
    BshrAllocate {
        /// Line waited on.
        line: u64,
        /// BSHR occupancy after allocation.
        occ: u32,
    },
    /// An arrival satisfied an outstanding BSHR wait.
    BshrFill {
        /// Line filled.
        line: u64,
        /// Loads released by the fill.
        waiters: u32,
        /// BSHR occupancy after the fill.
        occ: u32,
    },
    /// An arrival was consumed by a pending squash (reparative
    /// broadcast for a falsely-hit line).
    BshrSquash {
        /// Line squashed.
        line: u64,
        /// BSHR occupancy after the squash.
        occ: u32,
    },
    /// A remote load found its data already buffered — the paper's
    /// datathreading evidence.
    BshrFoundBuffered {
        /// Line found.
        line: u64,
        /// BSHR occupancy after consuming the buffer.
        occ: u32,
    },
    /// A line entered the Data Commit Update Buffer.
    DcubPush {
        /// Line inserted.
        line: u64,
        /// DCUB occupancy after the push.
        occ: u32,
    },
    /// A line left the DCUB at commit.
    DcubDrain {
        /// Line removed.
        line: u64,
        /// DCUB occupancy after the drain.
        occ: u32,
    },
    /// Commit-time false hit: the repair (late broadcast at the owner,
    /// squash post at non-owners) started.
    FalseHitRepair {
        /// Line repaired.
        line: u64,
    },
    /// Instructions retired this cycle (recorded only on non-zero
    /// cycles).
    Commit {
        /// Instructions retired.
        n: u32,
    },
    /// The lead node changed — one datathread ended.
    LeadChange {
        /// The node that just *lost* the lead.
        node: u32,
        /// Cycles it held the lead.
        held_cycles: u64,
    },
    /// The interconnect granted a transaction.
    BusGrant {
        /// Payload + header bytes moved.
        bytes: u64,
        /// Core cycles the message waited for the grant.
        queue_delay: u64,
    },
    /// A load whose data crossed the interconnect retired — the far end
    /// of the broadcast/request flow that started at `sent`. Recorded
    /// by the core at commit so trace exporters can draw flow arrows
    /// from the send through the arrival to the consuming commit.
    RemoteFillCommit {
        /// Line the load consumed.
        line: u64,
        /// Cycle the data entered the sender's output queue.
        sent: u64,
    },
    /// A BSHR wait outlived its timeout: the node asked the owner to
    /// re-broadcast the line (ds-chaos hardening; never recorded in a
    /// fault-free run).
    RetransmitRequest {
        /// Line whose broadcast went missing.
        line: u64,
        /// How many timeouts this wait has now suffered (1 = first).
        retry: u32,
    },
    /// The owner answered a retransmit request with a reparative
    /// re-broadcast of the line.
    RetransmitRebroadcast {
        /// Line re-broadcast.
        line: u64,
    },
    /// A line exhausted its retry budget and degraded to the
    /// traditional request–response protocol for the rest of the run.
    LineDegraded {
        /// Line degraded.
        line: u64,
    },
}

/// One cycle-stamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Core cycle the event happened on.
    pub cycle: Cycle,
    /// What happened.
    pub kind: EventKind,
}

/// The recording interface the simulation crates call. Default methods
/// are no-ops, so the disabled configuration ([`NoopProbe`]) costs
/// nothing.
pub trait Probe {
    /// Records one event.
    #[inline(always)]
    fn record(&mut self, _cycle: Cycle, _kind: EventKind) {}

    /// Charges one cycle to a stall bucket (top-down cycle accounting).
    #[inline(always)]
    fn charge(&mut self, _bucket: StallBucket) {}

    /// Charges one memory-wait cycle to the static PC at the head of
    /// the commit window.
    #[inline(always)]
    fn charge_pc(&mut self, _pc: u64, _kind: PcStallKind) {}

    /// Charges `n` cycles to one stall bucket at once — the batch form
    /// the event-horizon engine uses for skipped quiescent ranges.
    /// Implementations must make this equivalent to `n` calls to
    /// [`Probe::charge`].
    #[inline(always)]
    fn charge_many(&mut self, _bucket: StallBucket, _n: u64) {}

    /// Charges `n` memory-wait cycles to one PC at once; must be
    /// equivalent to `n` calls to [`Probe::charge_pc`].
    #[inline(always)]
    fn charge_pc_many(&mut self, _pc: u64, _kind: PcStallKind, _n: u64) {}

    /// Records one retirement's last-arrival critical-path node (see
    /// [`critpath`]). Called by the core once per committed
    /// instruction; guard construction with [`Probe::enabled`].
    #[inline(always)]
    fn edge_retire(&mut self, _node: CritNode) {}

    /// True when events are actually retained (lets callers skip
    /// expensive event *construction*, not just recording).
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// The compile-time no-op probe: a zero-sized type whose inherited
/// `record` is empty. This is what every call site monomorphises
/// against when the `obs` feature is off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// Derived metrics over one run's event stream, exposed on
/// `RunResult::metrics`. Deterministic: two identical runs produce
/// equal reports (asserted by `tests/determinism.rs` under
/// `--features obs`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// Broadcast latency (send-queue entry to arrival), one sample per
    /// arrival at each consumer.
    pub broadcast_latency: Histogram,
    /// BSHR occupancy sampled after every BSHR transition — its max is
    /// the high-water mark, its quantiles the occupancy curve.
    pub bshr_occupancy: Histogram,
    /// DCUB occupancy sampled after every push/drain.
    pub dcub_occupancy: Histogram,
    /// Datathread run lengths: cycles each lead-holding node kept the
    /// lead before a lead change.
    pub datathread_run_cycles: Histogram,
    /// Instructions retired per busy commit cycle.
    pub commit_burst: Histogram,
    /// Events recorded across all rings (retained + overwritten).
    pub events_recorded: u64,
    /// Events overwritten after ring wraparound.
    pub events_dropped: u64,
    /// Per-node cycle ledgers, indexed by node id. Each sums exactly
    /// to the run's total simulated cycles.
    pub node_accounts: Vec<CycleAccount>,
    /// Top memory-wait PCs merged across nodes, hottest first.
    pub hot_pcs: Vec<HotPc>,
    /// Last-arrival critical-path attribution, one entry per node.
    pub critpath: CritPathReport,
    /// Interval time-series telemetry with phase segmentation, one
    /// timeline per node.
    pub timeline: TimelineReport,
}

impl MetricsReport {
    /// Folds one ring's retained events (and its drop counter) into the
    /// report.
    pub fn absorb(&mut self, ring: &EventRing) {
        self.events_recorded += ring.len() as u64 + ring.dropped();
        self.events_dropped += ring.dropped();
        for ev in ring.iter() {
            match ev.kind {
                EventKind::BroadcastArrive { latency, .. } => {
                    self.broadcast_latency.record(latency);
                }
                EventKind::BshrAllocate { occ, .. }
                | EventKind::BshrFill { occ, .. }
                | EventKind::BshrSquash { occ, .. }
                | EventKind::BshrFoundBuffered { occ, .. } => {
                    self.bshr_occupancy.record(occ as u64);
                }
                EventKind::DcubPush { occ, .. } | EventKind::DcubDrain { occ, .. } => {
                    self.dcub_occupancy.record(occ as u64);
                }
                EventKind::LeadChange { held_cycles, .. } => {
                    self.datathread_run_cycles.record(held_cycles);
                }
                EventKind::Commit { n } => {
                    self.commit_burst.record(n as u64);
                }
                EventKind::BroadcastSend { .. }
                | EventKind::FalseHitRepair { .. }
                | EventKind::BusGrant { .. }
                | EventKind::RemoteFillCommit { .. }
                | EventKind::RetransmitRequest { .. }
                | EventKind::RetransmitRebroadcast { .. }
                | EventKind::LineDegraded { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_probe_records_nothing_and_reports_disabled() {
        let mut p = NoopProbe;
        p.record(1, EventKind::Commit { n: 4 });
        assert!(!p.enabled());
        assert_eq!(std::mem::size_of::<NoopProbe>(), 0);
    }

    #[test]
    fn metrics_absorb_classifies_events() {
        let mut r = Recorder::with_capacity(64);
        r.record(5, EventKind::BroadcastSend { line: 0x100 });
        r.record(9, EventKind::BroadcastArrive { line: 0x100, latency: 4 });
        r.record(9, EventKind::BshrFill { line: 0x100, waiters: 2, occ: 1 });
        r.record(10, EventKind::DcubPush { line: 0x140, occ: 3 });
        r.record(12, EventKind::Commit { n: 6 });
        r.record(20, EventKind::LeadChange { node: 1, held_cycles: 15 });
        let mut m = MetricsReport::default();
        m.absorb(r.ring());
        assert_eq!(m.events_recorded, 6);
        assert_eq!(m.events_dropped, 0);
        assert_eq!(m.broadcast_latency.total(), 1);
        assert_eq!(m.broadcast_latency.max(), Some(4));
        assert_eq!(m.bshr_occupancy.count(1), 1);
        assert_eq!(m.dcub_occupancy.count(3), 1);
        assert_eq!(m.commit_burst.count(6), 1);
        assert_eq!(m.datathread_run_cycles.max(), Some(15));
    }

    #[test]
    fn metrics_count_dropped_events_after_wraparound() {
        let mut r = Recorder::with_capacity(4);
        for c in 0..10u64 {
            r.record(c, EventKind::Commit { n: 1 });
        }
        let mut m = MetricsReport::default();
        m.absorb(r.ring());
        assert_eq!(m.events_recorded, 10);
        assert_eq!(m.events_dropped, 6);
        assert_eq!(m.commit_burst.total(), 4, "only retained events feed histograms");
    }
}
