//! `ds-dash`: renders `--json` experiment results and `--history`
//! throughput rows into one self-contained HTML dashboard.
//!
//! Dependency-free by design (parsing via [`ds_obs::json`], hand-rolled
//! SVG): the output is a single file with no external scripts, styles,
//! or fonts, so it can be attached to a PR or opened from a tmpfs
//! years later and still render. Per timeline label the dashboard
//! shows an IPC sparkline, a stacked stall-share ribbon per node (one
//! colour per [`StallBucket`]), and the segmented phases with their
//! dominant stall; `--history` adds a combined-throughput trend strip.
//!
//! The exact input documents are embedded verbatim in a
//! `<script type="application/json" id="ds-dash-data">` payload, so
//! `obs_validate dash.html` can re-check the numbers behind the
//! pictures without re-running anything.
//!
//! ```text
//! ds-dash --json fig7.json [--json more.json ...] \
//!         [--history BENCH_history.jsonl ...] [--out dash.html]
//! ```

use ds_obs::json::{self, Value};
use ds_obs::StallBucket;
use std::fmt::Write as _;

/// One loaded `--json` document: the path (used as the section title),
/// the raw text (embedded in the payload) and the parsed tree.
struct ResultDoc {
    path: String,
    text: String,
    doc: Value,
}

/// Fill colours for the stacked stall ribbon, indexed like
/// [`StallBucket::ALL`]. Committing is green; waits are warm colours.
const BUCKET_COLORS: [&str; 11] = [
    "#4caf50", // committing
    "#90a4ae", // fetch-stall
    "#7e57c2", // ruu-full
    "#5c6bc0", // lsq-full
    "#ef5350", // bshr-wait-remote
    "#ff7043", // local-memory-wait
    "#ffb300", // bus-contention-wait
    "#8d6e63", // commit-repair
    "#ec407a", // squash-replay
    "#ab47bc", // retry-wait
    "#cfd8dc", // idle
];

const SPARK_W: f64 = 720.0;
const SPARK_H: f64 = 56.0;
const RIBBON_H: f64 = 72.0;

fn main() {
    let mut json_paths: Vec<String> = Vec::new();
    let mut history_paths: Vec<String> = Vec::new();
    let mut out_path = String::from("ds-dash.html");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_paths.push(args.next().expect("--json takes a path")),
            "--history" => history_paths.push(args.next().expect("--history takes a path")),
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: ds-dash --json <result.json>... \
                     [--history <BENCH_history.jsonl>...] [--out <dash.html>]"
                );
                std::process::exit(2);
            }
        }
    }
    if json_paths.is_empty() && history_paths.is_empty() {
        eprintln!("ds-dash: nothing to render (pass --json and/or --history)");
        std::process::exit(2);
    }

    let mut results = Vec::new();
    for path in &json_paths {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read --json {path}: {e}"));
        let doc = json::parse(&text)
            .unwrap_or_else(|e| panic!("--json {path}: parse error: {e:?}"));
        results.push(ResultDoc { path: path.clone(), text, doc });
    }
    let mut history_lines: Vec<String> = Vec::new();
    for path in &history_paths {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read --history {path}: {e}"));
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            json::parse(line)
                .unwrap_or_else(|e| panic!("--history {path} line {}: {e:?}", i + 1));
            history_lines.push(line.to_string());
        }
    }

    let html = render(&results, &history_lines);
    std::fs::write(&out_path, html)
        .unwrap_or_else(|e| panic!("cannot write --out {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}

fn render(results: &[ResultDoc], history_lines: &[String]) -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push_str(
        "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>ds-dash</title>\n<style>\n\
         body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:64rem;\
         color:#222;background:#fafafa}\n\
         h1{font-size:1.3rem} h2{font-size:1.1rem;margin-top:2rem}\n\
         h3{font-size:0.95rem;margin:1rem 0 0.25rem}\n\
         svg{display:block;background:#fff;border:1px solid #ddd;border-radius:4px}\n\
         table{border-collapse:collapse;margin:0.5rem 0}\n\
         td,th{border:1px solid #ccc;padding:0.2rem 0.6rem;text-align:right}\n\
         th{background:#eee} td:first-child,th:first-child{text-align:left}\n\
         .legend span{display:inline-block;margin-right:0.8rem;white-space:nowrap}\n\
         .legend i{display:inline-block;width:0.8em;height:0.8em;margin-right:0.3em;\
         border-radius:2px}\n\
         .muted{color:#777;font-size:0.85rem}\n\
         </style>\n</head>\n<body>\n<h1>ds-dash — DataScalar timeline dashboard</h1>\n",
    );
    let sources: Vec<String> = results.iter().map(|r| esc_html(&r.path)).collect();
    if !sources.is_empty() {
        let _ = writeln!(out, "<p class=\"muted\">sources: {}</p>", sources.join(", "));
    }
    push_legend(&mut out);

    for r in results {
        let _ = writeln!(out, "<h2>{}</h2>", esc_html(&r.path));
        if let Some(binary) = r.doc.get("binary").and_then(Value::as_str) {
            let _ = writeln!(out, "<p class=\"muted\">binary: {}</p>", esc_html(binary));
        }
        match r.doc.get("timeline") {
            Some(Value::Obj(entries)) if !entries.is_empty() => {
                for (label, entry) in entries {
                    render_timeline_entry(&mut out, label, entry);
                }
            }
            _ => out.push_str("<p class=\"muted\">no timeline member in this document \
                               (obs-off run?)</p>\n"),
        }
    }

    if !history_lines.is_empty() {
        render_history(&mut out, history_lines);
    }

    out.push_str("<script type=\"application/json\" id=\"ds-dash-data\">\n");
    out.push_str(&payload(results, history_lines));
    out.push_str("\n</script>\n</body>\n</html>\n");
    out
}

/// The machine-readable payload: every input document embedded
/// verbatim. `</` is escaped to `<\/` (a legal JSON escape) so no
/// embedded string can terminate the surrounding `<script>` element.
fn payload(results: &[ResultDoc], history_lines: &[String]) -> String {
    let mut p = String::from("{\"tool\":\"ds-dash\",\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            p.push(',');
        }
        let _ = write!(p, "{{\"path\":{},\"doc\":{}}}", json_escape(&r.path), r.text.trim());
    }
    p.push_str("],\"history\":[");
    for (i, line) in history_lines.iter().enumerate() {
        if i > 0 {
            p.push(',');
        }
        p.push_str(line.trim());
    }
    p.push_str("]}");
    p.replace("</", "<\\/")
}

fn push_legend(out: &mut String) {
    out.push_str("<p class=\"legend\">");
    for (i, b) in StallBucket::ALL.iter().enumerate() {
        let _ = write!(
            out,
            "<span><i style=\"background:{}\"></i>{}</span>",
            BUCKET_COLORS[i],
            b.label()
        );
    }
    out.push_str("</p>\n");
}

/// One decoded interval row (the compact 18-number array of the
/// `ds-bench-result/v1` timeline member).
struct Row {
    start: f64,
    len: f64,
    committed: f64,
    buckets: [f64; 11],
}

fn decode_rows(node: &Value) -> Vec<Row> {
    let mut rows = Vec::new();
    for r in node.get("intervals").and_then(Value::as_array).unwrap_or(&[]) {
        let Some(nums) = r.as_array() else { continue };
        if nums.len() != 18 {
            continue;
        }
        let n = |i: usize| nums[i].as_f64().unwrap_or(0.0);
        let mut buckets = [0.0; 11];
        for (bi, b) in buckets.iter_mut().enumerate() {
            *b = n(7 + bi);
        }
        rows.push(Row { start: n(0), len: n(1), committed: n(2), buckets });
    }
    rows
}

fn render_timeline_entry(out: &mut String, label: &str, entry: &Value) {
    let interval_cycles = entry.get("interval_cycles").and_then(Value::as_f64).unwrap_or(0.0);
    let nodes = entry.get("nodes").and_then(Value::as_array).unwrap_or(&[]);
    let _ = writeln!(
        out,
        "<h3>{} <span class=\"muted\">({} node(s), {:.0}-cycle intervals)</span></h3>",
        esc_html(label),
        nodes.len(),
        interval_cycles
    );
    for (ni, node) in nodes.iter().enumerate() {
        let rows = decode_rows(node);
        if rows.is_empty() {
            let _ = writeln!(out, "<p class=\"muted\">node {ni}: no intervals recorded</p>");
            continue;
        }
        let dropped = node.get("dropped").and_then(Value::as_f64).unwrap_or(0.0);
        let span_start = rows[0].start;
        let span_end = rows[rows.len() - 1].start + rows[rows.len() - 1].len;
        let phase_starts: Vec<f64> = node
            .get("phases")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|p| p.get("start").and_then(Value::as_f64))
            .collect();
        let _ = writeln!(
            out,
            "<p class=\"muted\">node {ni}: {} intervals, cycles {:.0}&ndash;{:.0}{}</p>",
            rows.len(),
            span_start,
            span_end,
            if dropped > 0.0 {
                format!(", <b>{dropped:.0} intervals dropped</b> (ring wraparound)")
            } else {
                String::new()
            }
        );
        push_ipc_spark(out, &rows, span_start, span_end, &phase_starts);
        push_ribbon(out, &rows, span_start, span_end, &phase_starts);
        push_phase_table(out, node);
    }
}

/// Maps a cycle count to an x pixel inside the plot span.
fn xpos(cycle: f64, span_start: f64, span_end: f64) -> f64 {
    let span = (span_end - span_start).max(1.0);
    (cycle - span_start) / span * SPARK_W
}

fn push_phase_markers(out: &mut String, phase_starts: &[f64], s0: f64, s1: f64, h: f64) {
    for &p in phase_starts {
        if p <= s0 {
            continue; // the first phase boundary is the plot edge
        }
        let x = xpos(p, s0, s1);
        let _ = write!(
            out,
            "<line x1=\"{x:.1}\" y1=\"0\" x2=\"{x:.1}\" y2=\"{h}\" \
             stroke=\"#000\" stroke-dasharray=\"3,3\" opacity=\"0.5\"/>"
        );
    }
}

/// IPC per interval as a sparkline polyline, phase cuts dashed.
fn push_ipc_spark(out: &mut String, rows: &[Row], s0: f64, s1: f64, phase_starts: &[f64]) {
    let max_ipc = rows
        .iter()
        .map(|r| if r.len > 0.0 { r.committed / r.len } else { 0.0 })
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let _ = write!(
        out,
        "<svg width=\"{SPARK_W}\" height=\"{SPARK_H}\" viewBox=\"0 0 {SPARK_W} {SPARK_H}\" \
         role=\"img\" aria-label=\"IPC per interval\"><polyline fill=\"none\" \
         stroke=\"#1565c0\" stroke-width=\"1.5\" points=\""
    );
    for r in rows {
        let ipc = if r.len > 0.0 { r.committed / r.len } else { 0.0 };
        let x = xpos(r.start + r.len / 2.0, s0, s1);
        let y = SPARK_H - 4.0 - (ipc / max_ipc) * (SPARK_H - 8.0);
        let _ = write!(out, "{x:.1},{y:.1} ");
    }
    out.push_str("\"/>");
    push_phase_markers(out, phase_starts, s0, s1, SPARK_H);
    let _ = write!(
        out,
        "<text x=\"4\" y=\"12\" font-size=\"10\" fill=\"#1565c0\">IPC (peak {max_ipc:.2})</text>"
    );
    out.push_str("</svg>\n");
}

/// Stacked stall-share ribbon: one rect slice per (interval, bucket),
/// bucket shares of the interval length stacked to full height.
fn push_ribbon(out: &mut String, rows: &[Row], s0: f64, s1: f64, phase_starts: &[f64]) {
    let _ = write!(
        out,
        "<svg width=\"{SPARK_W}\" height=\"{RIBBON_H}\" \
         viewBox=\"0 0 {SPARK_W} {RIBBON_H}\" role=\"img\" \
         aria-label=\"stall-bucket shares per interval\">"
    );
    for r in rows {
        if r.len <= 0.0 {
            continue;
        }
        let x = xpos(r.start, s0, s1);
        let w = (xpos(r.start + r.len, s0, s1) - x).max(0.5);
        let mut y = 0.0;
        for (bi, &b) in r.buckets.iter().enumerate() {
            if b <= 0.0 {
                continue;
            }
            let h = b / r.len * RIBBON_H;
            let _ = write!(
                out,
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{h:.1}\" \
                 fill=\"{}\"/>",
                BUCKET_COLORS[bi]
            );
            y += h;
        }
    }
    push_phase_markers(out, phase_starts, s0, s1, RIBBON_H);
    out.push_str("</svg>\n");
}

fn push_phase_table(out: &mut String, node: &Value) {
    let phases = node.get("phases").and_then(Value::as_array).unwrap_or(&[]);
    if phases.is_empty() {
        return;
    }
    out.push_str(
        "<table><tr><th>phase</th><th>start</th><th>cycles</th>\
         <th>IPC</th><th>dominant stall</th><th>share</th></tr>\n",
    );
    for (i, p) in phases.iter().enumerate() {
        let num = |k: &str| p.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        let dom = p.get("dominant").and_then(Value::as_str).unwrap_or("?");
        let _ = writeln!(
            out,
            "<tr><td>{i}</td><td>{:.0}</td><td>{:.0}</td><td>{:.3}</td>\
             <td>{}</td><td>{:.1}%</td></tr>",
            num("start"),
            num("cycles"),
            num("ipc_millis") / 1000.0,
            esc_html(dom),
            num("dominant_millis") / 10.0
        );
    }
    out.push_str("</table>\n");
}

/// Combined-throughput trend over the appended history rows.
fn render_history(out: &mut String, lines: &[String]) {
    let values: Vec<f64> = lines
        .iter()
        .filter_map(|l| {
            json::parse(l).ok()?.get("combined_insts_per_sec").and_then(Value::as_f64)
        })
        .collect();
    let _ = writeln!(
        out,
        "<h2>Throughput history <span class=\"muted\">({} rows)</span></h2>",
        values.len()
    );
    if values.is_empty() {
        out.push_str("<p class=\"muted\">no parsable history rows</p>\n");
        return;
    }
    let max = values.iter().copied().fold(0.0_f64, f64::max).max(1e-9);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let _ = write!(
        out,
        "<svg width=\"{SPARK_W}\" height=\"{SPARK_H}\" viewBox=\"0 0 {SPARK_W} {SPARK_H}\" \
         role=\"img\" aria-label=\"combined insts per second over runs\">\
         <polyline fill=\"none\" stroke=\"#2e7d32\" stroke-width=\"1.5\" points=\""
    );
    let step = SPARK_W / values.len().max(2) as f64;
    for (i, v) in values.iter().enumerate() {
        let x = step * (i as f64 + 0.5);
        let y = SPARK_H - 4.0 - (v / max) * (SPARK_H - 8.0);
        let _ = write!(out, "{x:.1},{y:.1} ");
    }
    out.push_str("\"/>");
    let _ = write!(
        out,
        "<text x=\"4\" y=\"12\" font-size=\"10\" fill=\"#2e7d32\">\
         insts/s (min {min:.0}, max {max:.0}, latest {:.0})</text>",
        values[values.len() - 1]
    );
    out.push_str("</svg>\n");
}

fn esc_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> ResultDoc {
        let text = r#"{"schema":"ds-bench-result/v1","binary":"t","budget":null,
            "tables":[],"numbers":{},"notes":[],"critpath":{},
            "timeline":{"compress/ds2":{"interval_cycles":4096,"nodes":[
              {"dropped":0,
               "intervals":[[0,4096,2000,3,2,1,0,4096,0,0,0,0,0,0,0,0,0,0],
                            [4096,4096,500,1,1,2,0,1000,0,0,0,3096,0,0,0,0,0,0]],
               "phases":[{"start":0,"cycles":8192,"intervals":2,"committed":2500,
                          "ipc_millis":305,"dominant":"committing",
                          "dominant_millis":622,"buckets":[5096,0,0,0,3096,0,0,0,0,0,0]}]}
            ]}}}"#
            .to_string();
        let doc = json::parse(&text).unwrap();
        ResultDoc { path: "unit.json".into(), text, doc }
    }

    #[test]
    fn renders_self_contained_html_with_payload() {
        let html = render(&[sample_doc()], &[]);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("id=\"ds-dash-data\""));
        assert!(html.contains("compress/ds2"));
        // Sparkline + ribbon SVGs made it in.
        assert!(html.contains("IPC (peak"));
        assert!(html.contains("<rect"));
        // No external references: self-contained is the contract.
        assert!(!html.contains("http://") && !html.contains("https://"));
    }

    #[test]
    fn payload_parses_and_embeds_documents_verbatim() {
        let html = render(&[sample_doc()], &["{\"v\": 1, \"combined_insts_per_sec\": 9}".into()]);
        let start = html.find("id=\"ds-dash-data\">").unwrap() + "id=\"ds-dash-data\">".len();
        let end = html[start..].find("</script>").unwrap() + start;
        let p = json::parse(&html[start..end].replace("<\\/", "</")).expect("payload parses");
        let results = p.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results[0].get("path").and_then(Value::as_str), Some("unit.json"));
        let tl = results[0].get("doc").unwrap().get("timeline").unwrap();
        assert!(tl.get("compress/ds2").is_some());
        let hist = p.get("history").and_then(Value::as_array).unwrap();
        assert_eq!(hist[0].get("combined_insts_per_sec").and_then(Value::as_f64), Some(9.0));
    }

    #[test]
    fn script_terminator_cannot_leak_from_embedded_strings() {
        let mut d = sample_doc();
        d.path = "evil</script><b>.json".into();
        d.text = d.text.replace("\"binary\":\"t\"", "\"binary\":\"x</script>y\"");
        d.doc = json::parse(&d.text).unwrap();
        let html = render(&[d], &[]);
        let payload_start = html.find("id=\"ds-dash-data\">").unwrap();
        let payload_end = payload_start + html[payload_start..].find("</script>").unwrap();
        // The only `</script>` after the payload opener is the real one.
        assert!(!html[payload_start..payload_end].contains("</script>"));
        assert!(html[payload_start..payload_end].contains("<\\/script>"));
    }

    #[test]
    fn history_only_invocation_renders_a_trend() {
        let rows = vec![
            "{\"v\": 1, \"combined_insts_per_sec\": 100}".to_string(),
            "{\"v\": 1, \"combined_insts_per_sec\": 140}".to_string(),
        ];
        let html = render(&[], &rows);
        assert!(html.contains("Throughput history"));
        assert!(html.contains("latest 140"));
    }
}
