//! Validates machine-readable experiment output: parses each argument
//! as JSON and, when the document carries a known schema, checks its
//! required members. Used by `scripts/verify.sh` to gate the `--json`,
//! `--trace-out` and `--history` emitters.
//!
//! Checks per shape:
//!
//! * `ds-bench-result/v1`: required members, table row/header widths,
//!   and — when a `critpath` member is present — edge-class shares in
//!   range and summing to ~1 per label.
//! * Perfetto traces (`traceEvents`): per-track timestamp monotonicity,
//!   non-failing dropped-event warnings, and broadcast flow-id pairing
//!   (every `ph:"t"`/`"f"` flow step must name an emitted `ph:"s"` id).
//! * `*.jsonl` (e.g. `BENCH_history.jsonl`): every line a `v: 1` row
//!   with engine, budget, workloads and combined throughput counters.
//! * Other plain JSON (e.g. `BENCH_throughput.json`): parsing, plus the
//!   critpath-member check when one is present.
//!
//! Exit status: 0 when every file parses (and passes its schema
//! check), 1 otherwise.

use ds_obs::json::{self, Value};

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    if path.ends_with(".jsonl") {
        return check_history(&text);
    }
    let v = json::parse(&text).map_err(|e| e.to_string())?;
    match v.get("schema").and_then(Value::as_str) {
        Some("ds-bench-result/v1") => check_bench_result(&v),
        Some(other) => Err(format!("unknown schema `{other}`")),
        None if v.get("traceEvents").is_some() => check_trace(&v),
        // Plain JSON (e.g. BENCH_throughput.json): parsing is the bulk
        // of the check, but a critpath member must still be well-formed.
        None => check_critpath_member(&v),
    }
}

fn check_bench_result(v: &Value) -> Result<(), String> {
    for key in ["binary", "tables"] {
        if v.get(key).is_none() {
            return Err(format!("ds-bench-result/v1 document lacks `{key}`"));
        }
    }
    let tables = v
        .get("tables")
        .and_then(Value::as_array)
        .ok_or("`tables` must be an array")?;
    for t in tables {
        let headers = t
            .get("headers")
            .and_then(Value::as_array)
            .ok_or("table lacks `headers`")?;
        let rows = t.get("rows").and_then(Value::as_array).ok_or("table lacks `rows`")?;
        for row in rows {
            let row = row.as_array().ok_or("row must be an array")?;
            if row.len() != headers.len() {
                return Err(format!(
                    "row width {} does not match header width {}",
                    row.len(),
                    headers.len()
                ));
            }
        }
    }
    check_critpath_member(v)
}

/// Checks a `critpath` member (shared by `ds-bench-result/v1` and
/// `BENCH_throughput.json`): each labelled entry carries the four
/// edge-class shares, each in `[0, 1]`, summing to ~1 whenever any
/// cycles were attributed. Absent or `null` members pass — obs-off
/// builds legitimately have nothing to report.
fn check_critpath_member(v: &Value) -> Result<(), String> {
    let entries = match v.get("critpath") {
        Some(Value::Obj(entries)) => entries,
        Some(Value::Null) | None => return Ok(()),
        Some(_) => return Err("`critpath` must be an object or null".into()),
    };
    const CLASSES: [&str; 4] = ["compute", "communication", "structural", "frontend"];
    for (label, entry) in entries {
        let mut sum = 0.0;
        for class in CLASSES {
            let share = entry
                .get(class)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("critpath `{label}` lacks share `{class}`"))?;
            if !(0.0..=1.0).contains(&share) {
                return Err(format!(
                    "critpath `{label}` share `{class}` out of range: {share}"
                ));
            }
            sum += share;
        }
        let attributed =
            entry.get("attributed_cycles").and_then(Value::as_f64).unwrap_or(0.0);
        // Shares are printed with 6 decimals, so the sum can be off by
        // a few millionths per class; anything worse is a real bug.
        if attributed > 0.0 && (sum - 1.0).abs() > 1e-3 {
            return Err(format!(
                "critpath `{label}` class shares sum to {sum}, expected ~1"
            ));
        }
        if let Some(d) = entry.get("dropped").and_then(Value::as_f64) {
            if d < 0.0 {
                return Err(format!("critpath `{label}` has negative dropped count"));
            }
        }
    }
    Ok(())
}

/// Validates a `BENCH_history.jsonl` file: one self-contained `v: 1`
/// measurement row per line, so downstream tooling can trust every row
/// it greps out.
fn check_history(text: &str) -> Result<(), String> {
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = json::parse(line).map_err(|e| format!("line {}: {e:?}", i + 1))?;
        let context = |msg: &str| format!("line {}: {msg}", i + 1);
        match row.get("v").and_then(Value::as_f64) {
            Some(v) if v == 1.0 => {}
            Some(v) => return Err(context(&format!("unknown row version {v}"))),
            None => return Err(context("row lacks `v`")),
        }
        for key in ["unix_time", "combined_insts_per_sec", "combined_cycles_per_sec"] {
            if row.get(key).and_then(Value::as_f64).is_none() {
                return Err(context(&format!("row lacks number `{key}`")));
            }
        }
        if row.get("engine").and_then(Value::as_str).is_none() {
            return Err(context("row lacks string `engine`"));
        }
        if row.get("budget").and_then(|b| b.get("max_insts")).is_none() {
            return Err(context("row lacks `budget.max_insts`"));
        }
        let workloads = row
            .get("workloads")
            .and_then(Value::as_array)
            .ok_or_else(|| context("row lacks `workloads` array"))?;
        for w in workloads {
            for key in ["insts_per_sec", "cycles_per_sec"] {
                if w.get(key).and_then(Value::as_f64).is_none() {
                    return Err(context(&format!("workload lacks number `{key}`")));
                }
            }
            if w.get("name").and_then(Value::as_str).is_none() {
                return Err(context("workload lacks string `name`"));
            }
            // Optional (older rows predate it, obs-off rows carry null):
            // when present, bucket shares must be sane.
            if let Some(Value::Obj(shares)) = w.get("cycle_accounting") {
                for (bucket, share) in shares {
                    match share.as_f64() {
                        Some(s) if (0.0..=1.0).contains(&s) => {}
                        _ => {
                            return Err(context(&format!(
                                "cycle_accounting `{bucket}` share out of range"
                            )))
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn check_trace(v: &Value) -> Result<(), String> {
    let events = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("`traceEvents` must be an array")?;
    // Monotonically non-decreasing ts per (pid, tid) track, and
    // broadcast flow arrows that actually pair up: every flow step
    // (`ph:"t"`) and end (`ph:"f"`) must name a flow id some start
    // (`ph:"s"`) emitted — a dangling arrow renders as garbage in the
    // Perfetto UI, and the emitter is supposed to suppress orphans.
    let mut last: Vec<((u64, u64), f64)> = Vec::new();
    let mut flow_starts: Vec<f64> = Vec::new();
    let mut flow_refs: Vec<(String, f64)> = Vec::new();
    let mut dropped_total = 0.0;
    for e in events {
        if let Some(ph @ ("s" | "t" | "f")) = e.get("ph").and_then(Value::as_str) {
            let id = e.get("id").and_then(Value::as_f64).ok_or("flow event lacks id")?;
            if ph == "s" {
                flow_starts.push(id);
            } else {
                flow_refs.push((ph.to_string(), id));
            }
        }
        if e.get("ph").and_then(Value::as_str) == Some("M") {
            // `ds_dropped_events` metadata: an over-capacity EventRing
            // means the trace is a suffix of the run. Visibly warn —
            // but an incomplete trace is still a valid trace, so this
            // never fails the gate.
            if e.get("name").and_then(Value::as_str) == Some("ds_dropped_events") {
                let args = e.get("args");
                let dropped = args
                    .and_then(|a| a.get("dropped"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                if dropped > 0.0 {
                    let source = args
                        .and_then(|a| a.get("source"))
                        .and_then(Value::as_str)
                        .unwrap_or("?");
                    eprintln!(
                        "warning: source `{source}` dropped {dropped:.0} events \
                         (ring over capacity; trace is a suffix of the run)"
                    );
                    dropped_total += dropped;
                }
            }
            continue;
        }
        let pid = e.get("pid").and_then(Value::as_f64).ok_or("event lacks pid")? as u64;
        let tid = e.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let ts = e.get("ts").and_then(Value::as_f64).ok_or("event lacks ts")?;
        match last.iter_mut().find(|(k, _)| *k == (pid, tid)) {
            Some((_, prev)) => {
                if *prev > ts {
                    return Err(format!("track ({pid},{tid}) ts went backwards: {prev} > {ts}"));
                }
                *prev = ts;
            }
            None => last.push(((pid, tid), ts)),
        }
    }
    if dropped_total > 0.0 {
        eprintln!("warning: {dropped_total:.0} events dropped in total across sources");
    }
    flow_starts.sort_by(|a, b| a.partial_cmp(b).expect("flow ids are finite"));
    for (ph, id) in &flow_refs {
        if flow_starts.binary_search_by(|s| s.partial_cmp(id).expect("finite")).is_err() {
            return Err(format!("flow `{ph}` event id {id} has no matching `s` start"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critpath_member_shapes() {
        let good = json::parse(
            r#"{"critpath": {"compress": {"compute": 0.9, "communication": 0.1,
                "structural": 0.0, "frontend": 0.0,
                "attributed_cycles": 100, "dropped": 0}}}"#,
        )
        .unwrap();
        assert!(check_critpath_member(&good).is_ok());
        assert!(check_critpath_member(&json::parse(r#"{"critpath": null}"#).unwrap()).is_ok());
        assert!(check_critpath_member(&json::parse(r#"{"other": 1}"#).unwrap()).is_ok());

        let bad_sum = json::parse(
            r#"{"critpath": {"x": {"compute": 0.5, "communication": 0.1,
                "structural": 0.0, "frontend": 0.0, "attributed_cycles": 100}}}"#,
        )
        .unwrap();
        assert!(check_critpath_member(&bad_sum).unwrap_err().contains("sum"));
        let missing_class = json::parse(
            r#"{"critpath": {"x": {"compute": 1.0, "structural": 0.0, "frontend": 0.0}}}"#,
        )
        .unwrap();
        assert!(check_critpath_member(&missing_class).unwrap_err().contains("communication"));
    }

    #[test]
    fn history_rows_validate_line_by_line() {
        let good = r#"{"v": 1, "unix_time": 5, "engine": "event-horizon",
            "budget": {"max_insts": 400000, "scale": "Small"},
            "workloads": [{"name": "compress", "insts_per_sec": 100,
                           "cycles_per_sec": 200,
                           "cycle_accounting": {"committing": 0.5, "idle": 0.5}}],
            "combined_insts_per_sec": 100, "combined_cycles_per_sec": 200}"#
            .replace('\n', " ");
        // Pre-critpath rows lack cycle_accounting entirely: still valid.
        let old = r#"{"v": 1, "unix_time": 5, "engine": "e",
            "budget": {"max_insts": 1, "scale": "Tiny"},
            "workloads": [{"name": "go", "insts_per_sec": 1, "cycles_per_sec": 1}],
            "combined_insts_per_sec": 1, "combined_cycles_per_sec": 1}"#
            .replace('\n', " ");
        assert!(check_history(&format!("{good}\n{old}\n")).is_ok());
        assert!(check_history("{\"v\": 2}\n").unwrap_err().contains("version"));
        assert!(check_history("not json\n").is_err());
        let no_engine = good.replace("\"engine\": \"event-horizon\",", "");
        assert!(check_history(&no_engine).unwrap_err().contains("engine"));
    }

    #[test]
    fn dangling_flow_fails_paired_flow_passes() {
        let paired = json::parse(
            r#"{"traceEvents": [
                {"name": "broadcast-flow", "ph": "s", "id": 7, "ts": 1, "pid": 0, "tid": 4},
                {"name": "broadcast-flow", "ph": "t", "id": 7, "ts": 5, "pid": 1, "tid": 4}
            ]}"#,
        )
        .unwrap();
        assert!(check_trace(&paired).is_ok());
        let dangling = json::parse(
            r#"{"traceEvents": [
                {"name": "broadcast-flow", "ph": "f", "id": 9, "ts": 5, "pid": 1, "tid": 3}
            ]}"#,
        )
        .unwrap();
        assert!(check_trace(&dangling).unwrap_err().contains("no matching"));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: obs_validate <file.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &args {
        match check(path) {
            Ok(()) => println!("{path}: ok"),
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
