//! Validates machine-readable experiment output: parses each argument
//! as JSON and, when the document carries a known schema, checks its
//! required members. Used by `scripts/verify.sh` to gate the `--json`
//! and `--trace-out` emitters.
//!
//! Exit status: 0 when every file parses (and passes its schema
//! check), 1 otherwise.

use ds_obs::json::{self, Value};

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let v = json::parse(&text).map_err(|e| e.to_string())?;
    match v.get("schema").and_then(Value::as_str) {
        Some("ds-bench-result/v1") => check_bench_result(&v),
        Some(other) => Err(format!("unknown schema `{other}`")),
        None if v.get("traceEvents").is_some() => check_trace(&v),
        None => Ok(()), // plain JSON (e.g. BENCH_throughput.json): parsing is the check
    }
}

fn check_bench_result(v: &Value) -> Result<(), String> {
    for key in ["binary", "tables"] {
        if v.get(key).is_none() {
            return Err(format!("ds-bench-result/v1 document lacks `{key}`"));
        }
    }
    let tables = v
        .get("tables")
        .and_then(Value::as_array)
        .ok_or("`tables` must be an array")?;
    for t in tables {
        let headers = t
            .get("headers")
            .and_then(Value::as_array)
            .ok_or("table lacks `headers`")?;
        let rows = t.get("rows").and_then(Value::as_array).ok_or("table lacks `rows`")?;
        for row in rows {
            let row = row.as_array().ok_or("row must be an array")?;
            if row.len() != headers.len() {
                return Err(format!(
                    "row width {} does not match header width {}",
                    row.len(),
                    headers.len()
                ));
            }
        }
    }
    Ok(())
}

fn check_trace(v: &Value) -> Result<(), String> {
    let events = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("`traceEvents` must be an array")?;
    // Monotonically non-decreasing ts per (pid, tid) track.
    let mut last: Vec<((u64, u64), f64)> = Vec::new();
    let mut dropped_total = 0.0;
    for e in events {
        if e.get("ph").and_then(Value::as_str) == Some("M") {
            // `ds_dropped_events` metadata: an over-capacity EventRing
            // means the trace is a suffix of the run. Visibly warn —
            // but an incomplete trace is still a valid trace, so this
            // never fails the gate.
            if e.get("name").and_then(Value::as_str) == Some("ds_dropped_events") {
                let args = e.get("args");
                let dropped = args
                    .and_then(|a| a.get("dropped"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                if dropped > 0.0 {
                    let source = args
                        .and_then(|a| a.get("source"))
                        .and_then(Value::as_str)
                        .unwrap_or("?");
                    eprintln!(
                        "warning: source `{source}` dropped {dropped:.0} events \
                         (ring over capacity; trace is a suffix of the run)"
                    );
                    dropped_total += dropped;
                }
            }
            continue;
        }
        let pid = e.get("pid").and_then(Value::as_f64).ok_or("event lacks pid")? as u64;
        let tid = e.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let ts = e.get("ts").and_then(Value::as_f64).ok_or("event lacks ts")?;
        match last.iter_mut().find(|(k, _)| *k == (pid, tid)) {
            Some((_, prev)) => {
                if *prev > ts {
                    return Err(format!("track ({pid},{tid}) ts went backwards: {prev} > {ts}"));
                }
                *prev = ts;
            }
            None => last.push(((pid, tid), ts)),
        }
    }
    if dropped_total > 0.0 {
        eprintln!("warning: {dropped_total:.0} events dropped in total across sources");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: obs_validate <file.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &args {
        match check(path) {
            Ok(()) => println!("{path}: ok"),
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
