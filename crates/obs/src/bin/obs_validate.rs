//! Validates machine-readable experiment output: parses each argument
//! as JSON and, when the document carries a known schema, checks its
//! required members. Used by `scripts/verify.sh` to gate the `--json`,
//! `--trace-out` and `--history` emitters.
//!
//! Checks per shape:
//!
//! * `ds-bench-result/v1`: required members, table row/header widths,
//!   and — when a `critpath` member is present — edge-class shares in
//!   range and summing to ~1 per label.
//! * Perfetto traces (`traceEvents`): per-track timestamp monotonicity,
//!   non-failing dropped-event warnings, and broadcast flow-id pairing
//!   (every `ph:"t"`/`"f"` flow step must name an emitted `ph:"s"` id).
//! * `*.jsonl` (e.g. `BENCH_history.jsonl`): every line a `v: 1` row
//!   with engine, budget, workloads and combined throughput counters.
//! * `*.html` (a `ds-dash` dashboard): the embedded
//!   `id="ds-dash-data"` JSON payload must parse, and every embedded
//!   result document is re-checked as if passed directly — the numbers
//!   behind the pictures stay auditable.
//! * `ds-chaos-result/v1`: fault-matrix reports — every run must carry
//!   its plan label, fault counters, and the two verdicts
//!   (`matches_baseline`, `watchdog_fired`); a run that diverged from
//!   the fault-free baseline or tripped the watchdog fails validation.
//! * Other plain JSON (e.g. `BENCH_throughput.json`): parsing, plus the
//!   critpath- and timeline-member checks when present. Timeline
//!   interval rows must be the 18-number contract with bucket columns
//!   summing to the interval length, strictly increasing starts, and
//!   phases that partition the recorded intervals.
//!
//! Exit status: 0 when every file parses (and passes its schema
//! check), 1 otherwise.

use ds_obs::json::{self, Value};

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    if path.ends_with(".jsonl") {
        return check_history(&text);
    }
    if path.ends_with(".html") {
        return check_dash_html(&text);
    }
    let v = json::parse(&text).map_err(|e| e.to_string())?;
    check_value(&v)
}

fn check_value(v: &Value) -> Result<(), String> {
    match v.get("schema").and_then(Value::as_str) {
        Some("ds-bench-result/v1") => check_bench_result(v),
        Some("ds-chaos-result/v1") => check_chaos_result(v),
        Some(other) => Err(format!("unknown schema `{other}`")),
        None if v.get("traceEvents").is_some() => check_trace(v),
        // Plain JSON (e.g. BENCH_throughput.json): parsing is the bulk
        // of the check, but critpath/timeline members must still be
        // well-formed.
        None => {
            check_critpath_member(v)?;
            check_timeline_member(v)
        }
    }
}

/// Validates a `ds-dash` HTML dashboard by extracting and re-checking
/// the embedded machine-readable payload: the JSON must parse, every
/// embedded result document passes the same checks as a bare file, and
/// the interval sums behind the rendered ribbons reconcile.
fn check_dash_html(text: &str) -> Result<(), String> {
    const OPEN: &str = "id=\"ds-dash-data\">";
    let start = text.find(OPEN).ok_or("no embedded ds-dash-data payload")? + OPEN.len();
    let end = text[start..]
        .find("</script>")
        .ok_or("unterminated ds-dash-data payload")?
        + start;
    // Undo the `</` -> `<\/` neutralisation the emitter applies.
    let payload = text[start..end].replace("<\\/", "</");
    let p = json::parse(&payload).map_err(|e| format!("payload: {e:?}"))?;
    let results = p
        .get("results")
        .and_then(Value::as_array)
        .ok_or("payload lacks `results` array")?;
    for r in results {
        let path = r.get("path").and_then(Value::as_str).unwrap_or("?");
        let doc = r.get("doc").ok_or_else(|| format!("result `{path}` lacks `doc`"))?;
        check_value(doc).map_err(|e| format!("embedded `{path}`: {e}"))?;
    }
    for (i, row) in p
        .get("history")
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
        .enumerate()
    {
        if row.get("v").is_none() {
            return Err(format!("embedded history row {i} lacks `v`"));
        }
    }
    Ok(())
}

fn check_bench_result(v: &Value) -> Result<(), String> {
    for key in ["binary", "tables"] {
        if v.get(key).is_none() {
            return Err(format!("ds-bench-result/v1 document lacks `{key}`"));
        }
    }
    let tables = v
        .get("tables")
        .and_then(Value::as_array)
        .ok_or("`tables` must be an array")?;
    for t in tables {
        let headers = t
            .get("headers")
            .and_then(Value::as_array)
            .ok_or("table lacks `headers`")?;
        let rows = t.get("rows").and_then(Value::as_array).ok_or("table lacks `rows`")?;
        for row in rows {
            let row = row.as_array().ok_or("row must be an array")?;
            if row.len() != headers.len() {
                return Err(format!(
                    "row width {} does not match header width {}",
                    row.len(),
                    headers.len()
                ));
            }
        }
    }
    check_critpath_member(v)?;
    check_timeline_member(v)
}

/// Validates a `ds-chaos-result/v1` fault-matrix report. Beyond shape,
/// the verdicts themselves are load-bearing: a run whose architectural
/// state diverged from the fault-free baseline, or whose watchdog
/// fired, is a failed experiment and fails the gate here too (defense
/// in depth — the `ds-chaos` binary already exits non-zero).
fn check_chaos_result(v: &Value) -> Result<(), String> {
    let baseline = v.get("baseline").ok_or("ds-chaos-result/v1 document lacks `baseline`")?;
    for key in ["cycles", "committed"] {
        if baseline.get(key).and_then(Value::as_f64).is_none() {
            return Err(format!("`baseline` lacks number `{key}`"));
        }
    }
    if v.get("workload").and_then(Value::as_str).is_none() {
        return Err("ds-chaos-result/v1 document lacks string `workload`".into());
    }
    let runs = v
        .get("runs")
        .and_then(Value::as_array)
        .ok_or("ds-chaos-result/v1 document lacks `runs` array")?;
    if runs.is_empty() {
        return Err("`runs` is empty — the fault matrix did not run".into());
    }
    for (i, run) in runs.iter().enumerate() {
        let plan = run
            .get("plan")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("run {i} lacks string `plan`"))?;
        for key in ["cycles", "committed"] {
            if run.get(key).and_then(Value::as_f64).is_none() {
                return Err(format!("run `{plan}` lacks number `{key}`"));
            }
        }
        let faults = run
            .get("faults")
            .ok_or_else(|| format!("run `{plan}` lacks `faults`"))?;
        for key in ["dropped", "delayed", "duplicated", "reordered"] {
            if faults.get(key).and_then(Value::as_f64).is_none() {
                return Err(format!("run `{plan}` faults lack number `{key}`"));
            }
        }
        match run.get("matches_baseline") {
            Some(Value::Bool(true)) => {}
            Some(Value::Bool(false)) => {
                return Err(format!(
                    "run `{plan}` diverged from the fault-free baseline"
                ))
            }
            _ => return Err(format!("run `{plan}` lacks bool `matches_baseline`")),
        }
        match run.get("watchdog_fired") {
            Some(Value::Bool(false)) => {}
            Some(Value::Bool(true)) => {
                return Err(format!("run `{plan}` tripped the forward-progress watchdog"))
            }
            _ => return Err(format!("run `{plan}` lacks bool `watchdog_fired`")),
        }
    }
    Ok(())
}

/// Checks a `critpath` member (shared by `ds-bench-result/v1` and
/// `BENCH_throughput.json`): each labelled entry carries the four
/// edge-class shares, each in `[0, 1]`, summing to ~1 whenever any
/// cycles were attributed. Absent or `null` members pass — obs-off
/// builds legitimately have nothing to report.
fn check_critpath_member(v: &Value) -> Result<(), String> {
    let entries = match v.get("critpath") {
        Some(Value::Obj(entries)) => entries,
        Some(Value::Null) | None => return Ok(()),
        Some(_) => return Err("`critpath` must be an object or null".into()),
    };
    const CLASSES: [&str; 4] = ["compute", "communication", "structural", "frontend"];
    for (label, entry) in entries {
        let mut sum = 0.0;
        for class in CLASSES {
            let share = entry
                .get(class)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("critpath `{label}` lacks share `{class}`"))?;
            if !(0.0..=1.0).contains(&share) {
                return Err(format!(
                    "critpath `{label}` share `{class}` out of range: {share}"
                ));
            }
            sum += share;
        }
        let attributed =
            entry.get("attributed_cycles").and_then(Value::as_f64).unwrap_or(0.0);
        // Shares are printed with 6 decimals, so the sum can be off by
        // a few millionths per class; anything worse is a real bug.
        if attributed > 0.0 && (sum - 1.0).abs() > 1e-3 {
            return Err(format!(
                "critpath `{label}` class shares sum to {sum}, expected ~1"
            ));
        }
        if let Some(d) = entry.get("dropped").and_then(Value::as_f64) {
            if d < 0.0 {
                return Err(format!("critpath `{label}` has negative dropped count"));
            }
            // Coverage warning, non-failing: a starved window (most
            // retirements dropped, only the tail attributed) makes the
            // class shares unrepresentative of the run. Segment
            // flushing keeps current producers at zero drops; this
            // tripwire stays armed for regressions and for validating
            // old pre-segmentation baselines, which must keep passing.
            let coverage = attributed / (attributed + d).max(1.0);
            if d > 0.0 && coverage < 0.25 {
                eprintln!(
                    "warning: critpath `{label}` window attributed only {:.0}% of \
                     retirements ({attributed:.0} kept, {d:.0} dropped); shares cover \
                     the tail of the run — raise crit_window_capacity",
                    coverage * 100.0
                );
            }
        }
    }
    Ok(())
}

/// Checks a `timeline` member. Two shapes are accepted per label:
///
/// * the full `ds-bench-result/v1` form (`nodes` present): every
///   interval row is the 18-number contract `[start, len, committed,
///   sends, arrives, bshr_occ_hw, skipped, bucket0..bucket10]` with
///   strictly increasing starts and bucket columns summing exactly to
///   the interval length, and the phases partition the intervals;
/// * the `BENCH_throughput.json` summary form (no `nodes`): interval
///   count, dropped counter and phase list with dominant-stall fields.
///
/// Absent or `null` members pass (obs-off builds).
fn check_timeline_member(v: &Value) -> Result<(), String> {
    let entries = match v.get("timeline") {
        Some(Value::Obj(entries)) => entries,
        Some(Value::Null) | None => return Ok(()),
        Some(_) => return Err("`timeline` must be an object or null".into()),
    };
    for (label, entry) in entries {
        let interval_cycles = entry
            .get("interval_cycles")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("timeline `{label}` lacks `interval_cycles`"))?;
        if interval_cycles <= 0.0 {
            return Err(format!("timeline `{label}` has non-positive interval_cycles"));
        }
        match entry.get("nodes") {
            Some(nodes) => {
                let nodes = nodes
                    .as_array()
                    .ok_or_else(|| format!("timeline `{label}` `nodes` must be an array"))?;
                for (ni, node) in nodes.iter().enumerate() {
                    check_timeline_node(label, ni, node)?;
                }
            }
            None => check_timeline_summary(label, entry)?,
        }
    }
    Ok(())
}

/// The full per-node form: 18-number interval rows that reconcile.
fn check_timeline_node(label: &str, ni: usize, node: &Value) -> Result<(), String> {
    let ctx = |msg: String| format!("timeline `{label}` node {ni}: {msg}");
    let rows = node
        .get("intervals")
        .and_then(Value::as_array)
        .ok_or_else(|| ctx("lacks `intervals` array".into()))?;
    let mut prev_start = f64::NEG_INFINITY;
    let mut interval_cycle_sum = 0.0;
    for (ri, row) in rows.iter().enumerate() {
        let row = row.as_array().ok_or_else(|| ctx(format!("row {ri} is not an array")))?;
        if row.len() != 18 {
            return Err(ctx(format!("row {ri} has {} numbers, expected 18", row.len())));
        }
        let mut nums = [0.0f64; 18];
        for (i, cell) in row.iter().enumerate() {
            nums[i] = cell
                .as_f64()
                .ok_or_else(|| ctx(format!("row {ri} column {i} is not a number")))?;
        }
        let (start, len) = (nums[0], nums[1]);
        if start <= prev_start {
            return Err(ctx(format!("row {ri} start {start} not after {prev_start}")));
        }
        prev_start = start;
        interval_cycle_sum += len;
        let bucket_sum: f64 = nums[7..].iter().sum();
        if bucket_sum != len {
            return Err(ctx(format!(
                "row {ri} bucket columns sum to {bucket_sum}, expected interval \
                 length {len}"
            )));
        }
    }
    // Phases partition the recorded intervals: counts and cycles both
    // reconcile against the rows the phases were segmented from.
    let phases = node
        .get("phases")
        .and_then(Value::as_array)
        .ok_or_else(|| ctx("lacks `phases` array".into()))?;
    let mut phase_intervals = 0.0;
    let mut phase_cycles = 0.0;
    for p in phases {
        phase_intervals += p.get("intervals").and_then(Value::as_f64).unwrap_or(0.0);
        phase_cycles += p.get("cycles").and_then(Value::as_f64).unwrap_or(0.0);
    }
    if phase_intervals != rows.len() as f64 {
        return Err(ctx(format!(
            "phases cover {phase_intervals} intervals, {} recorded",
            rows.len()
        )));
    }
    if phase_cycles != interval_cycle_sum {
        return Err(ctx(format!(
            "phase cycles sum to {phase_cycles}, intervals to {interval_cycle_sum}"
        )));
    }
    Ok(())
}

/// The `BENCH_throughput.json` summary form.
fn check_timeline_summary(label: &str, entry: &Value) -> Result<(), String> {
    for key in ["intervals", "dropped"] {
        if entry.get(key).and_then(Value::as_f64).is_none() {
            return Err(format!("timeline `{label}` summary lacks number `{key}`"));
        }
    }
    let phases = entry
        .get("phases")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("timeline `{label}` summary lacks `phases` array"))?;
    for (i, p) in phases.iter().enumerate() {
        for key in ["start", "cycles", "ipc_millis", "dominant_millis"] {
            if p.get(key).and_then(Value::as_f64).is_none() {
                return Err(format!(
                    "timeline `{label}` phase {i} lacks number `{key}`"
                ));
            }
        }
        if p.get("dominant").and_then(Value::as_str).is_none() {
            return Err(format!("timeline `{label}` phase {i} lacks string `dominant`"));
        }
    }
    Ok(())
}

/// Validates a `BENCH_history.jsonl` file: one self-contained `v: 1`
/// measurement row per line, so downstream tooling can trust every row
/// it greps out.
fn check_history(text: &str) -> Result<(), String> {
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = json::parse(line).map_err(|e| format!("line {}: {e:?}", i + 1))?;
        let context = |msg: &str| format!("line {}: {msg}", i + 1);
        match row.get("v").and_then(Value::as_f64) {
            Some(v) if v == 1.0 => {}
            Some(v) => return Err(context(&format!("unknown row version {v}"))),
            None => return Err(context("row lacks `v`")),
        }
        for key in ["unix_time", "combined_insts_per_sec", "combined_cycles_per_sec"] {
            if row.get(key).and_then(Value::as_f64).is_none() {
                return Err(context(&format!("row lacks number `{key}`")));
            }
        }
        if row.get("engine").and_then(Value::as_str).is_none() {
            return Err(context("row lacks string `engine`"));
        }
        if row.get("budget").and_then(|b| b.get("max_insts")).is_none() {
            return Err(context("row lacks `budget.max_insts`"));
        }
        let workloads = row
            .get("workloads")
            .and_then(Value::as_array)
            .ok_or_else(|| context("row lacks `workloads` array"))?;
        for w in workloads {
            for key in ["insts_per_sec", "cycles_per_sec"] {
                if w.get(key).and_then(Value::as_f64).is_none() {
                    return Err(context(&format!("workload lacks number `{key}`")));
                }
            }
            if w.get("name").and_then(Value::as_str).is_none() {
                return Err(context("workload lacks string `name`"));
            }
            // Optional (older rows predate it, obs-off rows carry null):
            // when present, bucket shares must be sane.
            if let Some(Value::Obj(shares)) = w.get("cycle_accounting") {
                for (bucket, share) in shares {
                    match share.as_f64() {
                        Some(s) if (0.0..=1.0).contains(&s) => {}
                        _ => {
                            return Err(context(&format!(
                                "cycle_accounting `{bucket}` share out of range"
                            )))
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn check_trace(v: &Value) -> Result<(), String> {
    let events = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("`traceEvents` must be an array")?;
    // Monotonically non-decreasing ts per (pid, tid) track, and
    // broadcast flow arrows that actually pair up: every flow step
    // (`ph:"t"`) and end (`ph:"f"`) must name a flow id some start
    // (`ph:"s"`) emitted — a dangling arrow renders as garbage in the
    // Perfetto UI, and the emitter is supposed to suppress orphans.
    let mut last: Vec<((u64, u64), f64)> = Vec::new();
    let mut flow_starts: Vec<f64> = Vec::new();
    let mut flow_refs: Vec<(String, f64)> = Vec::new();
    let mut dropped_total = 0.0;
    for e in events {
        if let Some(ph @ ("s" | "t" | "f")) = e.get("ph").and_then(Value::as_str) {
            let id = e.get("id").and_then(Value::as_f64).ok_or("flow event lacks id")?;
            if ph == "s" {
                flow_starts.push(id);
            } else {
                flow_refs.push((ph.to_string(), id));
            }
        }
        if e.get("ph").and_then(Value::as_str) == Some("M") {
            // `ds_dropped_events` metadata: an over-capacity EventRing
            // means the trace is a suffix of the run. Visibly warn —
            // but an incomplete trace is still a valid trace, so this
            // never fails the gate.
            if e.get("name").and_then(Value::as_str) == Some("ds_dropped_events") {
                let args = e.get("args");
                let dropped = args
                    .and_then(|a| a.get("dropped"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                if dropped > 0.0 {
                    let source = args
                        .and_then(|a| a.get("source"))
                        .and_then(Value::as_str)
                        .unwrap_or("?");
                    eprintln!(
                        "warning: source `{source}` dropped {dropped:.0} events \
                         (ring over capacity; trace is a suffix of the run)"
                    );
                    dropped_total += dropped;
                }
            }
            continue;
        }
        let pid = e.get("pid").and_then(Value::as_f64).ok_or("event lacks pid")? as u64;
        let tid = e.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let ts = e.get("ts").and_then(Value::as_f64).ok_or("event lacks ts")?;
        match last.iter_mut().find(|(k, _)| *k == (pid, tid)) {
            Some((_, prev)) => {
                if *prev > ts {
                    return Err(format!("track ({pid},{tid}) ts went backwards: {prev} > {ts}"));
                }
                *prev = ts;
            }
            None => last.push(((pid, tid), ts)),
        }
    }
    if dropped_total > 0.0 {
        eprintln!("warning: {dropped_total:.0} events dropped in total across sources");
    }
    flow_starts.sort_by(|a, b| a.partial_cmp(b).expect("flow ids are finite"));
    for (ph, id) in &flow_refs {
        if flow_starts.binary_search_by(|s| s.partial_cmp(id).expect("finite")).is_err() {
            return Err(format!("flow `{ph}` event id {id} has no matching `s` start"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critpath_member_shapes() {
        let good = json::parse(
            r#"{"critpath": {"compress": {"compute": 0.9, "communication": 0.1,
                "structural": 0.0, "frontend": 0.0,
                "attributed_cycles": 100, "dropped": 0}}}"#,
        )
        .unwrap();
        assert!(check_critpath_member(&good).is_ok());
        assert!(check_critpath_member(&json::parse(r#"{"critpath": null}"#).unwrap()).is_ok());
        assert!(check_critpath_member(&json::parse(r#"{"other": 1}"#).unwrap()).is_ok());

        let bad_sum = json::parse(
            r#"{"critpath": {"x": {"compute": 0.5, "communication": 0.1,
                "structural": 0.0, "frontend": 0.0, "attributed_cycles": 100}}}"#,
        )
        .unwrap();
        assert!(check_critpath_member(&bad_sum).unwrap_err().contains("sum"));
        let missing_class = json::parse(
            r#"{"critpath": {"x": {"compute": 1.0, "structural": 0.0, "frontend": 0.0}}}"#,
        )
        .unwrap();
        assert!(check_critpath_member(&missing_class).unwrap_err().contains("communication"));
    }

    #[test]
    fn timeline_member_shapes() {
        // Full ds-bench-result/v1 form: 18-number rows that reconcile.
        let good = json::parse(
            r#"{"timeline": {"compress/ds2": {"interval_cycles": 4096, "nodes": [
                {"dropped": 0,
                 "intervals": [[0,4096,100,1,1,2,0,4096,0,0,0,0,0,0,0,0,0,0],
                               [4096,4096,50,0,0,1,0,1000,0,0,0,3096,0,0,0,0,0,0]],
                 "phases": [{"start": 0, "cycles": 8192, "intervals": 2,
                             "committed": 150, "ipc_millis": 18,
                             "dominant": "committing", "dominant_millis": 622,
                             "buckets": [5096,0,0,0,3096,0,0,0,0,0]}]}]}}}"#,
        )
        .unwrap();
        assert!(check_timeline_member(&good).is_ok());
        assert!(check_timeline_member(&json::parse(r#"{"timeline": null}"#).unwrap()).is_ok());
        assert!(check_timeline_member(&json::parse(r#"{"other": 1}"#).unwrap()).is_ok());

        // Bucket columns must sum to the interval length.
        let bad_sum = json::parse(
            r#"{"timeline": {"x": {"interval_cycles": 4096, "nodes": [
                {"dropped": 0,
                 "intervals": [[0,4096,100,1,1,2,0,4000,0,0,0,0,0,0,0,0,0,0]],
                 "phases": [{"intervals": 1, "cycles": 4096}]}]}}}"#,
        )
        .unwrap();
        assert!(check_timeline_member(&bad_sum).unwrap_err().contains("bucket columns"));

        // Wrong row width.
        let short_row = json::parse(
            r#"{"timeline": {"x": {"interval_cycles": 4096, "nodes": [
                {"dropped": 0, "intervals": [[0,4096,100]], "phases": []}]}}}"#,
        )
        .unwrap();
        assert!(check_timeline_member(&short_row).unwrap_err().contains("expected 18"));

        // Phases must partition the intervals.
        let bad_phases = json::parse(
            r#"{"timeline": {"x": {"interval_cycles": 4096, "nodes": [
                {"dropped": 0,
                 "intervals": [[0,4096,100,1,1,2,0,4096,0,0,0,0,0,0,0,0,0,0]],
                 "phases": [{"intervals": 2, "cycles": 8192}]}]}}}"#,
        )
        .unwrap();
        assert!(check_timeline_member(&bad_phases).unwrap_err().contains("phases cover"));

        // Summary form (BENCH_throughput.json).
        let summary = json::parse(
            r#"{"timeline": {"compress": {"interval_cycles": 4096, "intervals": 12,
                "dropped": 0, "phases": [{"start": 0, "cycles": 49152,
                "ipc_millis": 800, "dominant": "committing",
                "dominant_millis": 700}]}}}"#,
        )
        .unwrap();
        assert!(check_timeline_member(&summary).is_ok());
        let summary_bad = json::parse(
            r#"{"timeline": {"compress": {"interval_cycles": 4096, "intervals": 12,
                "dropped": 0, "phases": [{"start": 0, "cycles": 49152,
                "ipc_millis": 800, "dominant_millis": 700}]}}}"#,
        )
        .unwrap();
        assert!(check_timeline_member(&summary_bad).unwrap_err().contains("dominant"));
    }

    #[test]
    fn chaos_result_shapes_and_verdicts() {
        let good = json::parse(
            r#"{"schema": "ds-chaos-result/v1", "workload": "compress",
                "baseline": {"cycles": 1000, "committed": 500},
                "runs": [{"plan": "drop-every-3/bus", "cycles": 1200,
                          "committed": 500,
                          "faults": {"dropped": 4, "delayed": 0,
                                     "duplicated": 0, "reordered": 0},
                          "matches_baseline": true,
                          "watchdog_fired": false}]}"#,
        )
        .unwrap();
        assert!(check_value(&good).is_ok());

        let diverged = json::parse(
            r#"{"schema": "ds-chaos-result/v1", "workload": "compress",
                "baseline": {"cycles": 1000, "committed": 500},
                "runs": [{"plan": "p", "cycles": 1, "committed": 1,
                          "faults": {"dropped": 0, "delayed": 0,
                                     "duplicated": 0, "reordered": 0},
                          "matches_baseline": false,
                          "watchdog_fired": false}]}"#,
        )
        .unwrap();
        assert!(check_value(&diverged).unwrap_err().contains("diverged"));

        let fired = json::parse(
            r#"{"schema": "ds-chaos-result/v1", "workload": "compress",
                "baseline": {"cycles": 1000, "committed": 500},
                "runs": [{"plan": "p", "cycles": 1, "committed": 1,
                          "faults": {"dropped": 0, "delayed": 0,
                                     "duplicated": 0, "reordered": 0},
                          "matches_baseline": true,
                          "watchdog_fired": true}]}"#,
        )
        .unwrap();
        assert!(check_value(&fired).unwrap_err().contains("watchdog"));

        let empty = json::parse(
            r#"{"schema": "ds-chaos-result/v1", "workload": "w",
                "baseline": {"cycles": 1, "committed": 1}, "runs": []}"#,
        )
        .unwrap();
        assert!(check_value(&empty).unwrap_err().contains("empty"));
    }

    #[test]
    fn dash_html_payload_is_extracted_and_checked() {
        let html = r#"<!doctype html><html><body>
            <script type="application/json" id="ds-dash-data">
            {"tool":"ds-dash","results":[{"path":"a.json","doc":
              {"schema":"ds-bench-result/v1","binary":"t","tables":[],
               "critpath":{},"timeline":{}}}],
             "history":[{"v": 1}]}
            </script></body></html>"#;
        assert!(check_dash_html(html).is_ok());

        let bad_doc = html.replace("\"tables\":[],", "");
        assert!(check_dash_html(&bad_doc).unwrap_err().contains("embedded `a.json`"));

        assert!(check_dash_html("<html></html>")
            .unwrap_err()
            .contains("no embedded ds-dash-data"));
    }

    #[test]
    fn history_rows_validate_line_by_line() {
        let good = r#"{"v": 1, "unix_time": 5, "engine": "event-horizon",
            "budget": {"max_insts": 400000, "scale": "Small"},
            "workloads": [{"name": "compress", "insts_per_sec": 100,
                           "cycles_per_sec": 200,
                           "cycle_accounting": {"committing": 0.5, "idle": 0.5}}],
            "combined_insts_per_sec": 100, "combined_cycles_per_sec": 200}"#
            .replace('\n', " ");
        // Pre-critpath rows lack cycle_accounting entirely: still valid.
        let old = r#"{"v": 1, "unix_time": 5, "engine": "e",
            "budget": {"max_insts": 1, "scale": "Tiny"},
            "workloads": [{"name": "go", "insts_per_sec": 1, "cycles_per_sec": 1}],
            "combined_insts_per_sec": 1, "combined_cycles_per_sec": 1}"#
            .replace('\n', " ");
        assert!(check_history(&format!("{good}\n{old}\n")).is_ok());
        assert!(check_history("{\"v\": 2}\n").unwrap_err().contains("version"));
        assert!(check_history("not json\n").is_err());
        let no_engine = good.replace("\"engine\": \"event-horizon\",", "");
        assert!(check_history(&no_engine).unwrap_err().contains("engine"));
    }

    #[test]
    fn dangling_flow_fails_paired_flow_passes() {
        let paired = json::parse(
            r#"{"traceEvents": [
                {"name": "broadcast-flow", "ph": "s", "id": 7, "ts": 1, "pid": 0, "tid": 4},
                {"name": "broadcast-flow", "ph": "t", "id": 7, "ts": 5, "pid": 1, "tid": 4}
            ]}"#,
        )
        .unwrap();
        assert!(check_trace(&paired).is_ok());
        let dangling = json::parse(
            r#"{"traceEvents": [
                {"name": "broadcast-flow", "ph": "f", "id": 9, "ts": 5, "pid": 1, "tid": 3}
            ]}"#,
        )
        .unwrap();
        assert!(check_trace(&dangling).unwrap_err().contains("no matching"));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: obs_validate <file.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &args {
        match check(path) {
            Ok(()) => println!("{path}: ok"),
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
