//! Interval time-series telemetry: counter deltas sampled every
//! [`SAMPLE_INTERVAL`] cycles, plus deterministic phase segmentation.
//!
//! Whole-run aggregates (cycle accounting, critical-path shares) cannot
//! distinguish a run that is broadcast-bound for 10% of its cycles and
//! idle elsewhere from one that is uniformly mediocre. The timeline
//! closes that gap: each node owns a pre-allocated [`IntervalRing`]
//! that, at every `SAMPLE_INTERVAL` boundary, closes one
//! [`IntervalSample`] holding the *deltas* accumulated since the
//! previous boundary — instructions committed, per-bucket
//! [`CycleAccount`] charges, broadcast sends/arrivals, the BSHR
//! occupancy high-water mark, and how many of the interval's cycles the
//! event-horizon engine skipped.
//!
//! The boundaries are the same `SAMPLE_INTERVAL` multiples the Perfetto
//! `stalls` counter track snapshots at, and the ring follows the same
//! overwrite-oldest + drop-counter discipline as [`crate::EventRing`]:
//! this file is a ds-lint hot module, so the `sample*`/`note*` paths
//! allocate nothing after construction.
//!
//! On top of the intervals, [`segment_phases`] runs a deterministic
//! change-point pass (trailing-window smoothing, integer per-mille
//! signatures — no floats anywhere near a comparison) producing the
//! [`Phase`] list surfaced as [`TimelineReport`] on
//! `RunResult::metrics` and exported through `ds-bench-result/v1`
//! documents, per-phase folded stacks, and the `ds-dash` dashboard.

use crate::account::{CycleAccount, StallBucket, BUCKET_COUNT};
use crate::Cycle;

/// Cycles between timeline interval boundaries *and* Perfetto stall
/// counter snapshots. There is exactly one cadence: both samplers close
/// at multiples of this constant, so the two exports can never drift
/// apart.
pub const SAMPLE_INTERVAL: u64 = 4096;

/// Default [`IntervalRing`] capacity: 1024 intervals cover a 4M-cycle
/// run — comfortably past the full-budget Figure 7 grid — in ~128 KiB
/// per node.
pub const DEFAULT_TIMELINE_CAPACITY: usize = 1 << 10;

/// Trailing intervals folded into each smoothed signature before the
/// change-point comparison (noise suppression without look-ahead).
pub const SMOOTH_WINDOW: usize = 3;

/// Minimum intervals per phase: a cut is not allowed until the open
/// phase has at least this many intervals, so one noisy interval cannot
/// split a steady region in two.
pub const MIN_PHASE_INTERVALS: usize = 4;

/// Smoothed-IPC change (in thousandths of an instruction per cycle)
/// that opens a new phase.
pub const IPC_CUT_MILLIS: u64 = 200;

/// Largest single stall-bucket share change (in per-mille of the
/// interval's cycles) that opens a new phase.
pub const SHARE_CUT_MILLIS: u64 = 250;

/// One closed interval's counter deltas: everything that happened in
/// `[start, start + len)`.
#[derive(Debug, Clone, Copy, Default, Eq)]
pub struct IntervalSample {
    /// First cycle the interval covers.
    pub start: Cycle,
    /// Cycles covered (`SAMPLE_INTERVAL` except for the final partial
    /// interval closed at end of run).
    pub len: u64,
    /// Instructions committed during the interval.
    pub committed: u64,
    /// ESP broadcasts queued during the interval.
    pub sends: u64,
    /// Broadcast arrivals delivered during the interval.
    pub arrives: u64,
    /// BSHR occupancy high-water mark observed during the interval.
    pub bshr_occ_hw: u64,
    /// Cycles of the interval covered by event-horizon skips. Engine
    /// diagnostic: excluded from equality (see [`PartialEq`] impl).
    pub skipped: u64,
    /// Per-bucket cycle-account deltas, indexed by
    /// `StallBucket as usize`. Sums to `len`.
    pub buckets: [u64; BUCKET_COUNT],
}

/// Equality deliberately ignores [`IntervalSample::skipped`]: it
/// records how the *engine* covered the interval (the naive reference
/// loop never skips, the event-horizon engine skips most quiescent
/// cycles), not what the simulated machine did. Every behavioral field
/// must agree exactly across engines — that is what the
/// `skip_equivalence` grid pins once `TimelineReport` rides on
/// `RunResult::metrics`.
impl PartialEq for IntervalSample {
    fn eq(&self, other: &Self) -> bool {
        self.start == other.start
            && self.len == other.len
            && self.committed == other.committed
            && self.sends == other.sends
            && self.arrives == other.arrives
            && self.bshr_occ_hw == other.bshr_occ_hw
            && self.buckets == other.buckets
    }
}

impl IntervalSample {
    /// The interval's IPC in thousandths (integer fixed-point; the
    /// phase detector compares these, never floats).
    pub fn ipc_millis(&self) -> u64 {
        (self.committed * 1000).checked_div(self.len).unwrap_or(0)
    }

    /// `bucket`'s share of the interval in per-mille.
    pub fn share_millis(&self, bucket: StallBucket) -> u64 {
        (self.buckets[bucket as usize] * 1000).checked_div(self.len).unwrap_or(0)
    }
}

/// A fixed-capacity ring of [`IntervalSample`]s plus the running state
/// needed to close the next one. Same discipline as [`crate::EventRing`]:
/// allocated once at construction, overwrite-oldest when full, a
/// `dropped` counter instead of a failure path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalRing {
    /// Backing storage, allocated once; `buf.capacity()` never changes.
    buf: Vec<IntervalSample>,
    /// Index of the oldest retained interval (meaningful after wrap).
    head: usize,
    /// Intervals overwritten after wraparound.
    dropped: u64,
    /// Boundary the last interval closed at (start of the open one).
    prev_cycle: Cycle,
    /// Cumulative counter values at `prev_cycle`.
    prev_committed: u64,
    prev_sends: u64,
    prev_arrives: u64,
    prev_account: CycleAccount,
    /// High-water BSHR occupancy seen inside the open interval.
    occ_hw: u64,
    /// Skipped cycles accumulated inside the open interval.
    skipped_acc: u64,
}

impl IntervalRing {
    /// A ring retaining at most `capacity` intervals.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "an interval ring needs at least one slot");
        IntervalRing {
            buf: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
            prev_cycle: 0,
            prev_committed: 0,
            prev_sends: 0,
            prev_arrives: 0,
            prev_account: CycleAccount::default(),
            occ_hw: 0,
            skipped_acc: 0,
        }
    }

    /// Notes the BSHR occupancy for the open interval's high-water
    /// mark. Hot path: one compare.
    #[inline]
    pub fn note_occ(&mut self, occ: u64) {
        if occ > self.occ_hw {
            self.occ_hw = occ;
        }
    }

    /// Notes `n` cycles of the open interval as covered by an
    /// event-horizon skip.
    #[inline]
    pub fn note_skipped(&mut self, n: u64) {
        self.skipped_acc += n;
    }

    /// Closes the open interval at boundary `end`, given the node's
    /// *cumulative* counters at that boundary; deltas against the
    /// previous boundary become one [`IntervalSample`]. A repeated
    /// close at the same boundary (cycle 0, or end-of-run landing
    /// exactly on a boundary already closed) is a no-op, so callers
    /// can close unconditionally. Never allocates.
    pub fn sample_close(
        &mut self,
        end: Cycle,
        committed: u64,
        sends: u64,
        arrives: u64,
        account: &CycleAccount,
    ) {
        if end == self.prev_cycle {
            return;
        }
        let mut buckets = [0u64; BUCKET_COUNT];
        let now = account.buckets();
        let before = self.prev_account.buckets();
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = now[i] - before[i];
        }
        let sample = IntervalSample {
            start: self.prev_cycle,
            len: end - self.prev_cycle,
            committed: committed - self.prev_committed,
            sends: sends - self.prev_sends,
            arrives: arrives - self.prev_arrives,
            bshr_occ_hw: self.occ_hw,
            skipped: self.skipped_acc,
            buckets,
        };
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(sample);
        } else {
            self.buf[self.head] = sample;
            self.head += 1;
            if self.head == self.buf.len() {
                self.head = 0;
            }
            self.dropped += 1;
        }
        self.prev_cycle = end;
        self.prev_committed = committed;
        self.prev_sends = sends;
        self.prev_arrives = arrives;
        self.prev_account = *account;
        self.occ_hw = 0;
        self.skipped_acc = 0;
    }

    /// Retained intervals.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no interval has been closed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum intervals the ring retains.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Intervals overwritten after the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained intervals, oldest to newest (starts strictly
    /// increasing).
    pub fn iter(&self) -> impl Iterator<Item = &IntervalSample> + '_ {
        let (tail, head) = self.buf.split_at(self.head);
        head.iter().chain(tail.iter())
    }

    /// Snapshots the retained intervals and segments them into phases.
    /// Report-time only (allocates), never called from the cycle loop.
    pub fn report(&self) -> TimelineNodeReport {
        let intervals: Vec<IntervalSample> = self.iter().copied().collect();
        let phases = segment_phases(&intervals);
        TimelineNodeReport { intervals, phases, dropped: self.dropped }
    }
}

impl Default for IntervalRing {
    fn default() -> Self {
        IntervalRing::with_capacity(DEFAULT_TIMELINE_CAPACITY)
    }
}

/// One detected phase: a maximal run of consecutive intervals whose
/// smoothed signature stayed within the cut thresholds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Phase {
    /// First cycle the phase covers.
    pub start: Cycle,
    /// Total cycles covered.
    pub cycles: u64,
    /// Intervals folded into the phase.
    pub intervals: u32,
    /// Instructions committed across the phase.
    pub committed: u64,
    /// Per-bucket cycle sums across the phase. Sums to `cycles`.
    pub buckets: [u64; BUCKET_COUNT],
}

impl Phase {
    /// The phase's IPC in thousandths.
    pub fn ipc_millis(&self) -> u64 {
        (self.committed * 1000).checked_div(self.cycles).unwrap_or(0)
    }

    /// `bucket`'s share of the phase in per-mille.
    pub fn share_millis(&self, bucket: StallBucket) -> u64 {
        (self.buckets[bucket as usize] * 1000).checked_div(self.cycles).unwrap_or(0)
    }

    /// The bucket with the most cycles (ties break toward the earlier
    /// bucket in charge order) and its per-mille share.
    pub fn dominant(&self) -> (StallBucket, u64) {
        let mut best = StallBucket::Committing;
        let mut best_cycles = self.buckets[best as usize];
        for b in StallBucket::ALL {
            if self.buckets[b as usize] > best_cycles {
                best = b;
                best_cycles = self.buckets[b as usize];
            }
        }
        (best, self.share_millis(best))
    }

    fn absorb(&mut self, s: &IntervalSample) {
        self.cycles += s.len;
        self.intervals += 1;
        self.committed += s.committed;
        for (a, b) in self.buckets.iter_mut().zip(s.buckets.iter()) {
            *a += *b;
        }
    }
}

/// A smoothed integer signature: IPC and bucket shares in per-mille
/// over a trailing window of intervals.
#[derive(Debug, Clone, Copy, Default)]
struct Signature {
    ipc_millis: u64,
    share_millis: [u64; BUCKET_COUNT],
}

impl Signature {
    fn over(intervals: &[IntervalSample]) -> Signature {
        let cycles: u64 = intervals.iter().map(|s| s.len).sum();
        if cycles == 0 {
            return Signature::default();
        }
        let committed: u64 = intervals.iter().map(|s| s.committed).sum();
        let mut share_millis = [0u64; BUCKET_COUNT];
        for (i, out) in share_millis.iter_mut().enumerate() {
            let b: u64 = intervals.iter().map(|s| s.buckets[i]).sum();
            *out = b * 1000 / cycles;
        }
        Signature { ipc_millis: committed * 1000 / cycles, share_millis }
    }

    fn of_phase(p: &Phase) -> Signature {
        let mut share_millis = [0u64; BUCKET_COUNT];
        for (i, out) in share_millis.iter_mut().enumerate() {
            *out = (p.buckets[i] * 1000).checked_div(p.cycles).unwrap_or(0);
        }
        Signature { ipc_millis: p.ipc_millis(), share_millis }
    }

    /// True when the two signatures differ enough to cut a phase:
    /// smoothed IPC moved more than [`IPC_CUT_MILLIS`], or some
    /// bucket's share moved more than [`SHARE_CUT_MILLIS`]. Pure
    /// integer comparisons.
    fn cuts_from(&self, base: &Signature) -> bool {
        if self.ipc_millis.abs_diff(base.ipc_millis) > IPC_CUT_MILLIS {
            return true;
        }
        self.share_millis
            .iter()
            .zip(base.share_millis.iter())
            .any(|(a, b)| a.abs_diff(*b) > SHARE_CUT_MILLIS)
    }
}

/// Segments `intervals` (oldest to newest, as [`IntervalRing::iter`]
/// yields them) into phases by greedy change-point detection: each new
/// interval's trailing-window signature is compared against the open
/// phase's aggregate signature; when it moves past the cut thresholds
/// and the open phase already holds [`MIN_PHASE_INTERVALS`], a new
/// phase starts. Deterministic — integer arithmetic only, evaluated in
/// interval order.
pub fn segment_phases(intervals: &[IntervalSample]) -> Vec<Phase> {
    let mut phases: Vec<Phase> = Vec::new();
    let mut open: Option<Phase> = None;
    for (i, s) in intervals.iter().enumerate() {
        match open.as_mut() {
            None => {
                let mut p = Phase { start: s.start, ..Phase::default() };
                p.absorb(s);
                open = Some(p);
            }
            Some(p) => {
                let smoothed =
                    Signature::over(&intervals[i.saturating_sub(SMOOTH_WINDOW - 1)..=i]);
                if p.intervals as usize >= MIN_PHASE_INTERVALS
                    && smoothed.cuts_from(&Signature::of_phase(p))
                {
                    phases.push(*p);
                    let mut next = Phase { start: s.start, ..Phase::default() };
                    next.absorb(s);
                    *p = next;
                } else {
                    p.absorb(s);
                }
            }
        }
    }
    if let Some(p) = open {
        phases.push(p);
    }
    phases
}

/// One node's timeline: the retained intervals, the phases segmented
/// over them, and how many older intervals the ring overwrote.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelineNodeReport {
    /// Retained intervals, oldest to newest.
    pub intervals: Vec<IntervalSample>,
    /// Phases segmented over the retained intervals.
    pub phases: Vec<Phase>,
    /// Intervals overwritten after ring wraparound.
    pub dropped: u64,
}

/// The run's timeline, one [`TimelineNodeReport`] per node, carried on
/// `RunResult::metrics` (empty with no nodes absorbed — e.g. before a
/// run, or for systems that do not sample).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineReport {
    /// The sampling cadence the intervals were closed at.
    pub interval_cycles: u64,
    /// Per-node timelines, indexed by node id.
    pub nodes: Vec<TimelineNodeReport>,
}

impl Default for TimelineReport {
    fn default() -> Self {
        TimelineReport { interval_cycles: SAMPLE_INTERVAL, nodes: Vec::new() }
    }
}

impl TimelineReport {
    /// Folds the per-node timelines into one system-level timeline:
    /// intervals aligned by start cycle with counters summed across
    /// nodes (`len` becomes node-cycles, so shares and per-mille IPC
    /// stay well-defined) and `bshr_occ_hw` taken as the cross-node
    /// max, then re-segmented into system phases.
    pub fn merged(&self) -> TimelineNodeReport {
        let mut merged: Vec<IntervalSample> = Vec::new();
        for node in &self.nodes {
            for s in &node.intervals {
                match merged.binary_search_by_key(&s.start, |m| m.start) {
                    Ok(i) => {
                        let m = &mut merged[i];
                        m.len += s.len;
                        m.committed += s.committed;
                        m.sends += s.sends;
                        m.arrives += s.arrives;
                        m.skipped += s.skipped;
                        m.bshr_occ_hw = m.bshr_occ_hw.max(s.bshr_occ_hw);
                        for (a, b) in m.buckets.iter_mut().zip(s.buckets.iter()) {
                            *a += *b;
                        }
                    }
                    Err(i) => merged.insert(i, *s),
                }
            }
        }
        let phases = segment_phases(&merged);
        let dropped = self.nodes.iter().map(|n| n.dropped).sum();
        TimelineNodeReport { intervals: merged, phases, dropped }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct(charges: &[(StallBucket, u64)]) -> CycleAccount {
        let mut a = CycleAccount::default();
        for &(b, n) in charges {
            a.charge_many(b, n);
        }
        a
    }

    #[test]
    fn close_computes_deltas_and_resets_state() {
        let mut r = IntervalRing::with_capacity(8);
        r.note_occ(3);
        r.note_skipped(100);
        let a1 = acct(&[(StallBucket::Committing, 3000), (StallBucket::Idle, 1096)]);
        r.sample_close(4096, 900, 5, 7, &a1);
        let a2 = acct(&[(StallBucket::Committing, 3500), (StallBucket::Idle, 4692)]);
        r.sample_close(8192, 1100, 5, 9, &a2);
        let got: Vec<IntervalSample> = r.iter().copied().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(
            (got[0].start, got[0].len, got[0].committed, got[0].sends, got[0].arrives),
            (0, 4096, 900, 5, 7)
        );
        assert_eq!((got[0].bshr_occ_hw, got[0].skipped), (3, 100));
        assert_eq!(got[0].buckets[StallBucket::Committing as usize], 3000);
        // Second interval: deltas, not cumulative values, and the
        // occupancy/skip accumulators were reset by the first close.
        assert_eq!((got[1].start, got[1].len, got[1].committed), (4096, 4096, 200));
        assert_eq!((got[1].sends, got[1].arrives), (0, 2));
        assert_eq!((got[1].bshr_occ_hw, got[1].skipped), (0, 0));
        assert_eq!(got[1].buckets[StallBucket::Committing as usize], 500);
        assert_eq!(got[1].buckets[StallBucket::Idle as usize], 3596);
    }

    #[test]
    fn repeated_close_at_same_boundary_is_a_noop() {
        let mut r = IntervalRing::with_capacity(4);
        let a = acct(&[]);
        r.sample_close(0, 0, 0, 0, &a);
        assert!(r.is_empty());
        let a = acct(&[(StallBucket::Idle, 4096)]);
        r.sample_close(4096, 10, 0, 0, &a);
        r.sample_close(4096, 10, 0, 0, &a);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn ring_wraparound_overwrites_oldest_and_counts_drops() {
        let mut r = IntervalRing::with_capacity(4);
        for i in 1..=11u64 {
            let a = acct(&[(StallBucket::Idle, i * SAMPLE_INTERVAL)]);
            r.sample_close(i * SAMPLE_INTERVAL, i, 0, 0, &a);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 7);
        let starts: Vec<u64> = r.iter().map(|s| s.start).collect();
        assert_eq!(starts, vec![7 * 4096, 8 * 4096, 9 * 4096, 10 * 4096]);
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn closing_never_grows_the_buffer() {
        let mut r = IntervalRing::with_capacity(8);
        let ptr = r.buf.as_ptr();
        for i in 1..=100u64 {
            let a = acct(&[(StallBucket::Idle, i * 16)]);
            r.sample_close(i * 16, i, i, i, &a);
        }
        assert_eq!(r.capacity(), 8);
        assert_eq!(r.buf.as_ptr(), ptr, "storage must never reallocate");
    }

    #[test]
    fn equality_ignores_the_skipped_diagnostic() {
        let a = IntervalSample { skipped: 0, ..IntervalSample::default() };
        let b = IntervalSample { skipped: 4000, ..a };
        assert_eq!(a, b, "engines that skip differently must still compare equal");
        let c = IntervalSample { committed: 1, ..a };
        assert_ne!(a, c);
    }

    /// Builds `n` uniform intervals at the given committed/idle split.
    fn uniform(n: usize, start_at: u64, committed: u64) -> Vec<IntervalSample> {
        (0..n as u64)
            .map(|i| {
                let mut buckets = [0u64; BUCKET_COUNT];
                buckets[StallBucket::Committing as usize] = committed;
                buckets[StallBucket::Idle as usize] = SAMPLE_INTERVAL - committed;
                IntervalSample {
                    start: start_at + i * SAMPLE_INTERVAL,
                    len: SAMPLE_INTERVAL,
                    committed,
                    buckets,
                    ..IntervalSample::default()
                }
            })
            .collect()
    }

    #[test]
    fn segmentation_splits_on_an_ipc_step() {
        // 8 busy intervals then 8 near-idle ones: one clean cut.
        let mut ivs = uniform(8, 0, 3500);
        ivs.extend(uniform(8, 8 * SAMPLE_INTERVAL, 200));
        let phases = segment_phases(&ivs);
        assert_eq!(phases.len(), 2, "expected one cut, got {phases:?}");
        assert_eq!(phases[0].start, 0);
        assert_eq!(phases[0].intervals, 8);
        assert_eq!(phases[1].start, 8 * SAMPLE_INTERVAL);
        let total: u64 = phases.iter().map(|p| p.cycles).sum();
        assert_eq!(total, 16 * SAMPLE_INTERVAL, "phases partition the intervals");
        assert!(phases[0].ipc_millis() > phases[1].ipc_millis());
        assert_eq!(phases[1].dominant().0, StallBucket::Idle);
    }

    #[test]
    fn segmentation_keeps_a_steady_run_in_one_phase() {
        let ivs = uniform(32, 0, 2000);
        let phases = segment_phases(&ivs);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].intervals, 32);
        assert_eq!(phases[0].committed, 32 * 2000);
    }

    #[test]
    fn segmentation_respects_the_minimum_phase_length() {
        // Alternating intervals would cut every step if allowed; the
        // minimum phase length forces runs of at least
        // MIN_PHASE_INTERVALS.
        let mut ivs = Vec::new();
        for i in 0..24u64 {
            let committed = if i % 2 == 0 { 3500 } else { 200 };
            ivs.extend(uniform(1, i * SAMPLE_INTERVAL, committed));
        }
        let phases = segment_phases(&ivs);
        assert!(phases.iter().all(|p| p.intervals as usize >= MIN_PHASE_INTERVALS
            || p.start + p.cycles == 24 * SAMPLE_INTERVAL));
    }

    #[test]
    fn segmentation_is_deterministic() {
        let mut ivs = uniform(10, 0, 3000);
        ivs.extend(uniform(10, 10 * SAMPLE_INTERVAL, 100));
        ivs.extend(uniform(10, 20 * SAMPLE_INTERVAL, 2900));
        assert_eq!(segment_phases(&ivs), segment_phases(&ivs));
    }

    #[test]
    fn merged_aligns_by_start_and_sums() {
        let node0 = TimelineNodeReport {
            intervals: uniform(4, 0, 1000),
            dropped: 2,
            ..TimelineNodeReport::default()
        };
        let mut node1 = TimelineNodeReport {
            intervals: uniform(4, 0, 500),
            ..TimelineNodeReport::default()
        };
        node1.intervals[2].bshr_occ_hw = 9;
        let t = TimelineReport { interval_cycles: SAMPLE_INTERVAL, nodes: vec![node0, node1] };
        let m = t.merged();
        assert_eq!(m.dropped, 2);
        assert_eq!(m.intervals.len(), 4);
        assert_eq!(m.intervals[0].len, 2 * SAMPLE_INTERVAL, "len sums to node-cycles");
        assert_eq!(m.intervals[0].committed, 1500);
        assert_eq!(m.intervals[2].bshr_occ_hw, 9, "high-water is the cross-node max");
        let sum: u64 = m.intervals.iter().map(|s| s.committed).sum();
        assert_eq!(sum, 4 * 1500);
    }

    #[test]
    fn phase_buckets_sum_to_phase_cycles() {
        let mut ivs = uniform(6, 0, 3100);
        ivs.extend(uniform(6, 6 * SAMPLE_INTERVAL, 300));
        for p in segment_phases(&ivs) {
            assert_eq!(p.buckets.iter().sum::<u64>(), p.cycles);
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_is_rejected() {
        let _ = IntervalRing::with_capacity(0);
    }
}
