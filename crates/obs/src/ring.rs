//! The pre-allocated event ring and the instrumented [`Probe`].
//!
//! This file is a ds-lint hot module: `record*` and `edge*` functions
//! here run inside the simulator's cycle loop when the `obs` feature is
//! on, so rule a1 (no allocation) applies to them exactly as it does to
//! `OooCore::step`. All storage is allocated once at construction;
//! recording is a slot write plus two index updates.

use crate::account::{CycleAccount, PcProfile, PcStallKind, StallBucket};
use crate::critpath::CritWindow;
use crate::{CritNode, Cycle, Event, EventKind, Probe, DEFAULT_RING_CAPACITY};

/// A fixed-capacity ring of [`Event`]s. When full, the oldest event is
/// overwritten and [`EventRing::dropped`] counts the loss — recording
/// never fails, never blocks and never allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRing {
    /// Backing storage, allocated once; `buf.capacity() == capacity`.
    buf: Vec<Event>,
    /// Index of the oldest retained event (only meaningful once the
    /// ring has wrapped).
    head: usize,
    /// Events overwritten after wraparound.
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "an event ring needs at least one slot");
        EventRing { buf: Vec::with_capacity(capacity), head: 0, dropped: 0 }
    }

    /// Appends `ev`, overwriting the oldest event when full.
    pub fn record(&mut self, ev: Event) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.buf.len() {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events the ring retains.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Events overwritten after the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest to newest. Cycle stamps are
    /// non-decreasing because recording happens in simulation order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> + '_ {
        let (tail, head) = self.buf.split_at(self.head);
        head.iter().chain(tail.iter())
    }
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

/// The instrumented probe: records into an owned [`EventRing`]. This is
/// what consumer crates alias `Probe` types to when their `obs` feature
/// is on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Recorder {
    ring: EventRing,
    account: CycleAccount,
    pcs: PcProfile,
    crit: CritWindow,
}

impl Recorder {
    /// A recorder whose ring retains `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            ring: EventRing::with_capacity(capacity),
            account: CycleAccount::default(),
            pcs: PcProfile::default(),
            crit: CritWindow::default(),
        }
    }

    /// Replaces the critical-path window with an empty one retaining
    /// `capacity` retirements. Construction-time only (the simulators
    /// call it before the first cycle): any nodes already recorded are
    /// discarded.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_crit_capacity(&mut self, capacity: usize) {
        self.crit = CritWindow::with_capacity(capacity);
    }

    /// The recorded events.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// The critical-path window accumulated through
    /// [`Probe::edge_retire`].
    pub fn crit_window(&self) -> &CritWindow {
        &self.crit
    }

    /// The cycle ledger accumulated through [`Probe::charge`].
    pub fn account(&self) -> &CycleAccount {
        &self.account
    }

    /// The per-PC memory-wait profile accumulated through
    /// [`Probe::charge_pc`].
    pub fn pc_profile(&self) -> &PcProfile {
        &self.pcs
    }
}

impl Probe for Recorder {
    #[inline]
    fn record(&mut self, cycle: Cycle, kind: EventKind) {
        self.ring.record(Event { cycle, kind });
    }

    #[inline]
    fn charge(&mut self, bucket: StallBucket) {
        self.account.charge(bucket);
    }

    #[inline]
    fn charge_pc(&mut self, pc: u64, kind: PcStallKind) {
        self.pcs.charge_pc(pc, kind);
    }

    #[inline]
    fn charge_many(&mut self, bucket: StallBucket, n: u64) {
        self.account.charge_many(bucket, n);
    }

    #[inline]
    fn charge_pc_many(&mut self, pc: u64, kind: PcStallKind, n: u64) {
        self.pcs.charge_pc_many(pc, kind, n);
    }

    #[inline]
    fn edge_retire(&mut self, node: CritNode) {
        self.crit.edge_retire(node);
    }

    #[inline]
    fn enabled(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> Event {
        Event { cycle, kind: EventKind::Commit { n: 1 } }
    }

    #[test]
    fn ring_retains_in_order_below_capacity() {
        let mut r = EventRing::with_capacity(8);
        for c in 0..5 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_wraparound_overwrites_oldest_and_counts_drops() {
        let mut r = EventRing::with_capacity(4);
        for c in 0..11 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 7);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9, 10], "oldest events were overwritten");
    }

    #[test]
    fn ring_iteration_is_monotonic_across_many_wraps() {
        let mut r = EventRing::with_capacity(7);
        for c in 0..1000 {
            r.record(ev(c));
        }
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(r.dropped() + r.len() as u64, 1000);
    }

    #[test]
    fn recording_never_grows_the_buffer() {
        let mut r = EventRing::with_capacity(16);
        let cap = r.capacity();
        let ptr = r.buf.as_ptr();
        for c in 0..100 {
            r.record(ev(c));
        }
        assert_eq!(r.capacity(), cap, "capacity must never change");
        assert_eq!(r.buf.as_ptr(), ptr, "storage must never reallocate");
    }

    #[test]
    fn recorder_is_an_enabled_probe() {
        let mut p = Recorder::with_capacity(4);
        assert!(p.enabled());
        p.record(3, EventKind::BroadcastSend { line: 0x40 });
        assert_eq!(p.ring().len(), 1);
        assert_eq!(p.ring().iter().next().unwrap().cycle, 3);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_is_rejected() {
        let _ = EventRing::with_capacity(0);
    }
}
