//! Chrome trace-event / Perfetto JSON export.
//!
//! Renders event rings as a timeline loadable in `ui.perfetto.dev` or
//! `chrome://tracing`: one *process* per simulated component (node,
//! system, interconnect), one *thread* per track. Instant events
//! (`"ph":"i"`) mark protocol actions; counter events (`"ph":"C"`)
//! chart BSHR/DCUB occupancy and commit throughput. `ts` is the
//! simulated core cycle (the trace declares no time unit — read the
//! axis as cycles).
//!
//! Within one track (a `(pid, tid)` pair) timestamps are monotonically
//! non-decreasing. Rings are recorded in simulation order, but some
//! events carry *future* cycle stamps (a broadcast send is stamped with
//! the cycle its memory access completes, and bank queueing reorders
//! those), so the exporter stable-sorts each source by cycle before
//! emitting (asserted by the shape tests here and at workspace level).
//!
//! Cross-node data movement is additionally rendered as flow arrows
//! (`"ph":"s"/"t"/"f"`): a broadcast `send` starts a flow, each
//! consumer's `arrive` is a step, and the consuming core's retirement
//! ([`EventKind::RemoteFillCommit`]) finishes it — so one arrow spans
//! owner generation → bus → BSHR fill → commit. Flow ids are derived
//! deterministically from the `(line, send cycle)` pair every endpoint
//! knows; steps/finishes whose start was dropped from a wrapped ring
//! are suppressed, so every emitted `t`/`f` has its `s` (checked by
//! `obs_validate`).

use crate::account::{CycleAccount, StallBucket};
use crate::{EventKind, EventRing};
use std::fmt::Write as _;

/// One ring rendered under one process id.
#[derive(Debug, Clone, Copy)]
pub struct TraceSource<'a> {
    /// Perfetto process id (we use node index; `N` = system,
    /// `N + 1` = interconnect).
    pub pid: u32,
    /// Process name shown in the UI.
    pub name: &'a str,
    /// The events.
    pub ring: &'a EventRing,
}

/// Track ids within a process. Disjoint per source kind so two sources
/// sharing a pid (a node's memory side and its core) never interleave
/// on one track.
const TID_BROADCAST: u32 = 1;
const TID_BSHR: u32 = 2;
const TID_DCUB: u32 = 3;
const TID_COMMIT: u32 = 4;
const TID_LEAD: u32 = 5;
const TID_BUS: u32 = 6;
/// Stall-bucket occupancy counter track (fed by `stall_counter_events`,
/// not by ring events).
pub const TID_STALLS: u32 = 7;

const TRACK_NAMES: [(u32, &str); 7] = [
    (TID_BROADCAST, "broadcast"),
    (TID_BSHR, "bshr"),
    (TID_DCUB, "dcub"),
    (TID_COMMIT, "commit"),
    (TID_LEAD, "lead"),
    (TID_BUS, "bus"),
    (TID_STALLS, "stalls"),
];

/// Renders `sources` as one Chrome trace-event JSON document.
pub fn trace_json(sources: &[TraceSource<'_>]) -> String {
    trace_json_with(sources, &[])
}

/// Like [`trace_json`], appending pre-rendered event objects (one JSON
/// object per string, no trailing separators) after the ring events —
/// used for the cycle-accounting counter tracks, which are sampled
/// outside the rings.
pub fn trace_json_with(sources: &[TraceSource<'_>], extras: &[String]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };

    // Process/thread name metadata: one process_name per distinct pid,
    // thread names for every track a source's events actually use.
    let mut named_pids: Vec<u32> = Vec::new();
    let mut named_tracks: Vec<(u32, u32)> = Vec::new();
    for s in sources {
        if !named_pids.contains(&s.pid) {
            named_pids.push(s.pid);
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                s.pid, s.name
            );
        }
        // Per-source drop accounting: a wrapped ring means the trace is
        // truncated, and that must be visible *in* the trace. Always
        // emitted (dropped == 0 positively asserts completeness);
        // `obs_validate` warns when the sum is nonzero.
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"ds_dropped_events\",\"ph\":\"M\",\"pid\":{},\
             \"args\":{{\"source\":\"{}\",\"dropped\":{},\"retained\":{}}}}}",
            s.pid,
            s.name,
            s.ring.dropped(),
            s.ring.len()
        );
        for ev in s.ring.iter() {
            let tid = tid_of(&ev.kind);
            if !named_tracks.contains(&(s.pid, tid)) {
                named_tracks.push((s.pid, tid));
                let tname = TRACK_NAMES
                    .iter()
                    .find(|&&(t, _)| t == tid)
                    .map(|&(_, n)| n)
                    .unwrap_or("events");
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{tid},\
                     \"args\":{{\"name\":\"{tname}\"}}}}",
                    s.pid
                );
            }
        }
    }

    // Flow starts retained across all sources: steps and finishes are
    // only emitted when their start survived ring wraparound.
    let mut send_ids: Vec<u64> = Vec::new();
    for s in sources {
        for ev in s.ring.iter() {
            if let EventKind::BroadcastSend { line } = ev.kind {
                send_ids.push(flow_id(line, ev.cycle));
            }
        }
    }
    send_ids.sort_unstable();

    for s in sources {
        let mut events: Vec<crate::Event> = s.ring.iter().copied().collect();
        events.sort_by_key(|ev| ev.cycle); // stable: same-cycle order kept
        for ev in &events {
            sep(&mut out);
            emit_event(&mut out, s.pid, ev.cycle, &ev.kind);
            if let Some(obj) = flow_event(s.pid, ev.cycle, &ev.kind, &send_ids) {
                sep(&mut out);
                out.push_str(&obj);
            }
        }
    }
    for e in extras {
        sep(&mut out);
        out.push_str(e);
    }
    out.push_str("\n]}\n");
    out
}

/// Renders one node's stall-bucket occupancy as a Perfetto counter
/// track (`tid` [`TID_STALLS`]) and appends the event objects to `out`
/// (for [`trace_json_with`]'s `extras`).
///
/// `samples` are `(cycle, cumulative_account)` snapshots taken *before*
/// charging that cycle, in ascending cycle order; each emitted counter
/// sample carries the per-bucket cycles spent since the previous
/// snapshot. A final sample covers the partial interval from the last
/// snapshot to `end_cycle` using `final_account`.
pub fn stall_counter_events(
    pid: u32,
    samples: &[(u64, CycleAccount)],
    end_cycle: u64,
    final_account: &CycleAccount,
    out: &mut Vec<String>,
) {
    let mut obj = String::with_capacity(256);
    let _ = write!(
        obj,
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{TID_STALLS},\
         \"args\":{{\"name\":\"stalls\"}}}}"
    );
    out.push(obj);

    let mut emit = |ts: u64, prev: &CycleAccount, cur: &CycleAccount| {
        let mut obj = String::with_capacity(256);
        let _ = write!(
            obj,
            "{{\"name\":\"stall cycles\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\
             \"tid\":{TID_STALLS},\"args\":{{"
        );
        for (i, b) in StallBucket::ALL.iter().enumerate() {
            if i > 0 {
                obj.push(',');
            }
            let _ = write!(obj, "\"{}\":{}", b.label(), cur.get(*b) - prev.get(*b));
        }
        obj.push_str("}}");
        out.push(obj);
    };

    let mut prev = CycleAccount::default();
    let mut prev_cycle = 0u64;
    for (cycle, acct) in samples {
        if *cycle > prev_cycle || prev_cycle == 0 {
            emit(*cycle, &prev, acct);
            prev = *acct;
            prev_cycle = *cycle;
        }
    }
    if end_cycle > prev_cycle && final_account.total() > prev.total() {
        emit(end_cycle, &prev, final_account);
    }
}

fn tid_of(kind: &EventKind) -> u32 {
    match kind {
        EventKind::BroadcastSend { .. }
        | EventKind::BroadcastArrive { .. }
        | EventKind::FalseHitRepair { .. }
        | EventKind::RetransmitRequest { .. }
        | EventKind::RetransmitRebroadcast { .. }
        | EventKind::LineDegraded { .. } => TID_BROADCAST,
        EventKind::BshrAllocate { .. }
        | EventKind::BshrFill { .. }
        | EventKind::BshrSquash { .. }
        | EventKind::BshrFoundBuffered { .. } => TID_BSHR,
        EventKind::DcubPush { .. } | EventKind::DcubDrain { .. } => TID_DCUB,
        EventKind::Commit { .. } | EventKind::RemoteFillCommit { .. } => TID_COMMIT,
        EventKind::LeadChange { .. } => TID_LEAD,
        EventKind::BusGrant { .. } => TID_BUS,
    }
}

/// The flow id tying a broadcast's `send` to its `arrive` steps and the
/// consuming `RemoteFillCommit`. Every endpoint derives it from the
/// `(line, send cycle)` pair it already carries, so no shared state is
/// needed — two identical runs emit identical ids.
fn flow_id(line: u64, sent: u64) -> u64 {
    line.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ sent
}

/// The flow-arrow object for `kind`, if it is a flow endpoint whose
/// start survived in some ring (`send_ids` is sorted).
fn flow_event(pid: u32, ts: u64, kind: &EventKind, send_ids: &[u64]) -> Option<String> {
    let (ph, tid, id) = match *kind {
        EventKind::BroadcastSend { line } => ("s", TID_BROADCAST, flow_id(line, ts)),
        EventKind::BroadcastArrive { line, latency } => {
            ("t", TID_BROADCAST, flow_id(line, ts.saturating_sub(latency)))
        }
        EventKind::RemoteFillCommit { line, sent } => ("f", TID_COMMIT, flow_id(line, sent)),
        _ => return None,
    };
    if ph != "s" && send_ids.binary_search(&id).is_err() {
        return None;
    }
    let mut obj = String::with_capacity(128);
    let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
    let _ = write!(
        obj,
        "{{\"name\":\"broadcast-flow\",\"cat\":\"broadcast\",\"ph\":\"{ph}\",\"id\":{id},\
         \"ts\":{ts},\"pid\":{pid},\"tid\":{tid}{bp}}}"
    );
    Some(obj)
}

fn emit_event(out: &mut String, pid: u32, ts: u64, kind: &EventKind) {
    let tid = tid_of(kind);
    let instant = |out: &mut String, name: &str, args: std::fmt::Arguments<'_>| {
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\
             \"tid\":{tid},\"args\":{{{args}}}}}"
        );
    };
    let counter = |out: &mut String, name: &str, key: &str, value: u64| {
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"{key}\":{value}}}}}"
        );
    };
    match *kind {
        EventKind::BroadcastSend { line } => {
            instant(out, "send", format_args!("\"line\":{line}"));
        }
        EventKind::BroadcastArrive { line, latency } => {
            instant(out, "arrive", format_args!("\"line\":{line},\"latency\":{latency}"));
        }
        EventKind::FalseHitRepair { line } => {
            instant(out, "repair", format_args!("\"line\":{line}"));
        }
        EventKind::BshrAllocate { line, occ } => {
            instant(out, "allocate", format_args!("\"line\":{line},\"occ\":{occ}"));
        }
        EventKind::BshrFill { line, waiters, occ } => {
            instant(
                out,
                "fill",
                format_args!("\"line\":{line},\"waiters\":{waiters},\"occ\":{occ}"),
            );
        }
        EventKind::BshrSquash { line, occ } => {
            instant(out, "squash", format_args!("\"line\":{line},\"occ\":{occ}"));
        }
        EventKind::BshrFoundBuffered { line, occ } => {
            instant(out, "found-buffered", format_args!("\"line\":{line},\"occ\":{occ}"));
        }
        EventKind::DcubPush { occ, .. } => counter(out, "dcub occupancy", "occ", occ as u64),
        EventKind::DcubDrain { occ, .. } => counter(out, "dcub occupancy", "occ", occ as u64),
        EventKind::Commit { n } => counter(out, "committed", "n", n as u64),
        EventKind::LeadChange { node, held_cycles } => {
            instant(
                out,
                "lead-change",
                format_args!("\"node\":{node},\"held_cycles\":{held_cycles}"),
            );
        }
        EventKind::BusGrant { bytes, queue_delay } => {
            instant(out, "grant", format_args!("\"bytes\":{bytes},\"queue_delay\":{queue_delay}"));
        }
        EventKind::RemoteFillCommit { line, sent } => {
            instant(out, "remote-fill-commit", format_args!("\"line\":{line},\"sent\":{sent}"));
        }
        EventKind::RetransmitRequest { line, retry } => {
            instant(out, "retransmit-req", format_args!("\"line\":{line},\"retry\":{retry}"));
        }
        EventKind::RetransmitRebroadcast { line } => {
            instant(out, "retransmit-rebroadcast", format_args!("\"line\":{line}"));
        }
        EventKind::LineDegraded { line } => {
            instant(out, "line-degraded", format_args!("\"line\":{line}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use crate::{EventKind, Probe, Recorder};

    fn sample_sources() -> Vec<(String, Recorder)> {
        let mut n0 = Recorder::with_capacity(64);
        n0.record(2, EventKind::BroadcastSend { line: 0x100 });
        n0.record(4, EventKind::DcubPush { line: 0x100, occ: 1 });
        n0.record(9, EventKind::BshrAllocate { line: 0x200, occ: 1 });
        n0.record(14, EventKind::BshrFill { line: 0x200, waiters: 1, occ: 0 });
        n0.record(14, EventKind::BroadcastArrive { line: 0x200, latency: 8 });
        let mut sys = Recorder::with_capacity(16);
        sys.record(40, EventKind::LeadChange { node: 0, held_cycles: 40 });
        vec![("node0".to_string(), n0), ("system".to_string(), sys)]
    }

    #[test]
    fn trace_is_valid_json_with_monotonic_tracks() {
        let sources = sample_sources();
        let refs: Vec<TraceSource<'_>> = sources
            .iter()
            .enumerate()
            .map(|(i, (name, r))| TraceSource { pid: i as u32, name, ring: r.ring() })
            .collect();
        let text = trace_json(&refs);
        let v = crate::json::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
        assert!(!events.is_empty());
        // ts monotonically non-decreasing per (pid, tid) track.
        let mut last: Vec<((u64, u64), f64)> = Vec::new();
        for e in events {
            if e.get("ph").and_then(Value::as_str) == Some("M") {
                continue;
            }
            let pid = e.get("pid").and_then(Value::as_f64).unwrap() as u64;
            let tid = e.get("tid").and_then(Value::as_f64).unwrap() as u64;
            let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
            match last.iter_mut().find(|(k, _)| *k == (pid, tid)) {
                Some((_, prev)) => {
                    assert!(*prev <= ts, "track ({pid},{tid}) went backwards");
                    *prev = ts;
                }
                None => last.push(((pid, tid), ts)),
            }
        }
        assert!(last.len() >= 3, "expected broadcast, bshr, dcub and lead tracks");
    }

    #[test]
    fn trace_reports_dropped_events_per_source() {
        let sources = sample_sources();
        let refs: Vec<TraceSource<'_>> = sources
            .iter()
            .enumerate()
            .map(|(i, (name, r))| TraceSource { pid: i as u32, name, ring: r.ring() })
            .collect();
        let text = trace_json(&refs);
        let v = crate::json::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        let drops: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("ds_dropped_events"))
            .collect();
        assert_eq!(drops.len(), sources.len(), "one drop record per source");
        for d in drops {
            let args = d.get("args").unwrap();
            assert_eq!(args.get("dropped").and_then(Value::as_f64), Some(0.0));
            assert!(args.get("retained").and_then(Value::as_f64).unwrap() > 0.0);
        }
    }

    #[test]
    fn stall_counter_track_emits_interval_deltas() {
        use crate::account::{CycleAccount, StallBucket};
        let mut mid = CycleAccount::default();
        for _ in 0..3 {
            mid.charge(StallBucket::Committing);
        }
        mid.charge(StallBucket::Idle);
        let mut fin = mid;
        fin.charge(StallBucket::BshrWaitRemote);
        fin.charge(StallBucket::BshrWaitRemote);
        let samples = vec![(0u64, CycleAccount::default()), (4u64, mid)];
        let mut extras = Vec::new();
        stall_counter_events(0, &samples, 6, &fin, &mut extras);
        let text = trace_json_with(&[], &extras);
        let v = crate::json::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        let counters: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("stall cycles"))
            .collect();
        assert_eq!(counters.len(), 3, "start, mid and final samples");
        // The mid sample carries the cycles since the start snapshot.
        let args = counters[1].get("args").unwrap();
        assert_eq!(args.get("committing").and_then(Value::as_f64), Some(3.0));
        assert_eq!(args.get("idle").and_then(Value::as_f64), Some(1.0));
        // The final partial interval carries only the tail.
        let args = counters[2].get("args").unwrap();
        assert_eq!(args.get("bshr-wait-remote").and_then(Value::as_f64), Some(2.0));
        assert_eq!(args.get("committing").and_then(Value::as_f64), Some(0.0));
        assert!(text.contains("\"name\":\"stalls\""), "stalls track named");
    }

    #[test]
    fn flows_pair_send_arrive_and_commit() {
        // Owner node 0 sends line 0x200 at cycle 6; node 1 receives it
        // at 14 and the consuming load retires at 20.
        let mut n0 = Recorder::with_capacity(16);
        n0.record(6, EventKind::BroadcastSend { line: 0x200 });
        let mut n1 = Recorder::with_capacity(16);
        n1.record(14, EventKind::BroadcastArrive { line: 0x200, latency: 8 });
        n1.record(20, EventKind::RemoteFillCommit { line: 0x200, sent: 6 });
        // A commit whose send was never recorded (e.g. dropped from a
        // wrapped ring) must not emit a dangling finish.
        n1.record(25, EventKind::RemoteFillCommit { line: 0x999, sent: 1 });
        let text = trace_json(&[
            TraceSource { pid: 0, name: "node0", ring: n0.ring() },
            TraceSource { pid: 1, name: "node1", ring: n1.ring() },
        ]);
        let v = crate::json::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        let flows: Vec<(&str, f64)> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("broadcast-flow"))
            .map(|e| {
                (
                    e.get("ph").and_then(Value::as_str).unwrap(),
                    e.get("id").and_then(Value::as_f64).unwrap(),
                )
            })
            .collect();
        let of = |ph: &str| flows.iter().filter(|(p, _)| *p == ph).count();
        assert_eq!((of("s"), of("t"), of("f")), (1, 1, 1), "{flows:?}");
        let id = flows[0].1;
        assert!(flows.iter().all(|(_, i)| *i == id), "one flow, one id: {flows:?}");
        assert!(text.contains("\"bp\":\"e\""), "finish binds to the enclosing instant");
    }

    #[test]
    fn trace_names_processes_and_threads() {
        let sources = sample_sources();
        let refs: Vec<TraceSource<'_>> = sources
            .iter()
            .enumerate()
            .map(|(i, (name, r))| TraceSource { pid: i as u32, name, ring: r.ring() })
            .collect();
        let text = trace_json(&refs);
        assert!(text.contains("\"process_name\""));
        assert!(text.contains("\"node0\""));
        assert!(text.contains("\"broadcast\""));
        assert!(text.contains("\"bshr\""));
    }
}
