//! Top-down cycle accounting: every simulated cycle charged to exactly
//! one stall bucket, plus a per-PC profile of memory-wait cycles.
//!
//! The attribution follows the top-down style of `sim-outorder` and
//! gem5's stat framework: on a cycle where nothing retires, the *oldest*
//! instruction in the commit window is what the machine is truly
//! waiting on, so the cycle is charged to whatever that instruction is
//! blocked by. The closed bucket set lives in [`StallBucket`]; the
//! accumulator is [`CycleAccount`] — a fixed array, so charging is one
//! indexed increment and ds-lint a1-clean. The invariant downstream
//! code asserts: per node, `CycleAccount::total()` equals the total
//! simulated cycles exactly.

/// Number of stall buckets — the length of every [`CycleAccount`].
pub const BUCKET_COUNT: usize = 11;

/// The closed set of per-cycle charges. Exactly one per node per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum StallBucket {
    /// At least one instruction retired this cycle.
    Committing = 0,
    /// Fetch is stalled: instruction-cache miss latency or the
    /// post-redirect refill penalty after a resolved mispredict.
    FetchStall,
    /// Fetch blocked because the register update unit is full.
    RuuFull,
    /// Fetch blocked because the load/store queue is full.
    LsqFull,
    /// Head of the commit window is a memory op waiting on a remote
    /// operand (BSHR entry outstanding, bus quiet).
    BshrWaitRemote,
    /// Head of the commit window is a memory op waiting on local
    /// memory (cache miss to owned storage).
    LocalMemWait,
    /// Head is waiting on remote data while the interconnect is busy —
    /// the wait is (at least partly) contention, not pure latency.
    BusContentionWait,
    /// Head is waiting on remote data while a reparative (false-hit)
    /// broadcast squash is pending — DCUB/commit-repair territory.
    CommitRepair,
    /// The window is draining or refilling after a branch mispredict
    /// whose redirect has not yet resolved.
    SquashReplay,
    /// Head is waiting on remote data whose broadcast timed out — the
    /// BSHR is retrying (retransmit request outstanding) or the line
    /// has degraded to request–response. Only ds-chaos runs with BSHR
    /// timeouts enabled ever charge this bucket.
    RetryWait,
    /// Nothing retired and nothing is identifiably blocked: dependence
    /// chains in flight, startup, or the run already finished.
    Idle,
}

impl StallBucket {
    /// Every bucket, in charge order.
    pub const ALL: [StallBucket; BUCKET_COUNT] = [
        StallBucket::Committing,
        StallBucket::FetchStall,
        StallBucket::RuuFull,
        StallBucket::LsqFull,
        StallBucket::BshrWaitRemote,
        StallBucket::LocalMemWait,
        StallBucket::BusContentionWait,
        StallBucket::CommitRepair,
        StallBucket::SquashReplay,
        StallBucket::RetryWait,
        StallBucket::Idle,
    ];

    /// Stable kebab-case label (folded-stack frames, Perfetto args,
    /// `ds-report` keys).
    pub const fn label(self) -> &'static str {
        match self {
            StallBucket::Committing => "committing",
            StallBucket::FetchStall => "fetch-stall",
            StallBucket::RuuFull => "ruu-full",
            StallBucket::LsqFull => "lsq-full",
            StallBucket::BshrWaitRemote => "bshr-wait-remote",
            StallBucket::LocalMemWait => "local-memory-wait",
            StallBucket::BusContentionWait => "bus-contention-wait",
            StallBucket::CommitRepair => "commit-repair",
            StallBucket::SquashReplay => "squash-replay",
            StallBucket::RetryWait => "retry-wait",
            StallBucket::Idle => "idle",
        }
    }
}

/// Per-node cycle ledger: one counter per [`StallBucket`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleAccount {
    buckets: [u64; BUCKET_COUNT],
}

impl CycleAccount {
    /// Charges one cycle to `bucket`. A single array increment —
    /// hot-path safe (no allocation, no branches beyond the index).
    #[inline]
    pub fn charge(&mut self, bucket: StallBucket) {
        self.buckets[bucket as usize] += 1;
    }

    /// Charges `n` cycles to `bucket` at once — the batch form the
    /// event-horizon engine uses when it skips a quiescent range. Must
    /// stay equivalent to `n` calls to [`CycleAccount::charge`].
    #[inline]
    pub fn charge_many(&mut self, bucket: StallBucket, n: u64) {
        self.buckets[bucket as usize] += n;
    }

    /// Cycles charged to `bucket`.
    #[inline]
    pub fn get(&self, bucket: StallBucket) -> u64 {
        self.buckets[bucket as usize]
    }

    /// Sum over all buckets — must equal elapsed cycles.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The raw counters, indexed by `StallBucket as usize`.
    pub fn buckets(&self) -> &[u64; BUCKET_COUNT] {
        &self.buckets
    }

    /// Adds `other`'s counters into `self` (system-wide rollups).
    pub fn merge(&mut self, other: &CycleAccount) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// `bucket`'s share of the total, in [0, 1]; 0 when empty.
    pub fn share(&self, bucket: StallBucket) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(bucket) as f64 / total as f64
        }
    }
}

/// Which kind of memory wait a PC is being charged for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcStallKind {
    /// Charged alongside [`StallBucket::BshrWaitRemote`].
    RemoteWait,
    /// Charged alongside [`StallBucket::LocalMemWait`].
    LocalWait,
}

/// Distinct static PCs the profile tracks before overflowing. Inserts
/// below this bound never reallocate (the vec is pre-sized), keeping
/// `charge_pc` a1-clean.
pub const PC_PROFILE_CAPACITY: usize = 4096;

/// One profiled PC's accumulated wait cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcWait {
    pub pc: u64,
    pub remote_wait: u64,
    pub local_wait: u64,
}

/// Per-node map from static load/store PC to wait cycles, kept sorted
/// by PC in a pre-allocated vec. Past [`PC_PROFILE_CAPACITY`] distinct
/// PCs, further new PCs fold into the overflow counters (existing PCs
/// keep accumulating) so the bucket totals stay exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcProfile {
    entries: Vec<PcWait>,
    overflow_remote: u64,
    overflow_local: u64,
}

impl Default for PcProfile {
    fn default() -> Self {
        PcProfile {
            entries: Vec::with_capacity(PC_PROFILE_CAPACITY),
            overflow_remote: 0,
            overflow_local: 0,
        }
    }
}

impl PcProfile {
    /// Charges one wait cycle of `kind` to `pc`. Binary search plus an
    /// in-place insert below capacity; no allocation either way.
    #[inline]
    pub fn charge_pc(&mut self, pc: u64, kind: PcStallKind) {
        self.charge_pc_many(pc, kind, 1);
    }

    /// Charges `n` wait cycles of `kind` to `pc` at once — the batch
    /// form for skipped quiescent ranges. Must stay equivalent to `n`
    /// calls to [`PcProfile::charge_pc`] (including the overflow path).
    #[inline]
    pub fn charge_pc_many(&mut self, pc: u64, kind: PcStallKind, n: u64) {
        let i = match self.entries.binary_search_by_key(&pc, |e| e.pc) {
            Ok(i) => i,
            Err(i) => {
                // Compare against len, not spare capacity: a cloned
                // profile keeps no spare capacity but the same bound
                // must hold.
                if self.entries.len() >= PC_PROFILE_CAPACITY {
                    match kind {
                        PcStallKind::RemoteWait => self.overflow_remote += n,
                        PcStallKind::LocalWait => self.overflow_local += n,
                    }
                    return;
                }
                self.entries.insert(i, PcWait { pc, remote_wait: 0, local_wait: 0 });
                i
            }
        };
        match kind {
            PcStallKind::RemoteWait => self.entries[i].remote_wait += n,
            PcStallKind::LocalWait => self.entries[i].local_wait += n,
        }
    }

    /// The profiled PCs, sorted ascending by PC.
    pub fn entries(&self) -> &[PcWait] {
        &self.entries
    }

    /// `(remote, local)` wait cycles charged past capacity.
    pub fn overflow(&self) -> (u64, u64) {
        (self.overflow_remote, self.overflow_local)
    }
}

/// One row of a top-N hot-PC table (merged across nodes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotPc {
    pub pc: u64,
    pub remote_wait: u64,
    pub local_wait: u64,
}

impl HotPc {
    /// Combined wait cycles — the sort key of the hot-PC table.
    pub fn total(&self) -> u64 {
        self.remote_wait + self.local_wait
    }
}

/// Merges per-node profiles and returns the `n` PCs with the most
/// combined wait cycles, sorted by (total desc, pc asc) so the table
/// is deterministic.
pub fn top_hot_pcs<'a>(
    profiles: impl IntoIterator<Item = &'a PcProfile>,
    n: usize,
) -> Vec<HotPc> {
    let mut merged: Vec<HotPc> = Vec::new();
    for p in profiles {
        for e in p.entries() {
            match merged.binary_search_by_key(&e.pc, |h| h.pc) {
                Ok(i) => {
                    merged[i].remote_wait += e.remote_wait;
                    merged[i].local_wait += e.local_wait;
                }
                Err(i) => merged.insert(
                    i,
                    HotPc { pc: e.pc, remote_wait: e.remote_wait, local_wait: e.local_wait },
                ),
            }
        }
    }
    merged.sort_by(|a, b| b.total().cmp(&a.total()).then(a.pc.cmp(&b.pc)));
    merged.truncate(n);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut a = CycleAccount::default();
        a.charge(StallBucket::Committing);
        a.charge(StallBucket::Committing);
        a.charge(StallBucket::Idle);
        assert_eq!(a.get(StallBucket::Committing), 2);
        assert_eq!(a.get(StallBucket::Idle), 1);
        assert_eq!(a.total(), 3);
        assert!((a.share(StallBucket::Committing) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn charge_many_equals_repeated_charges() {
        let mut batched = CycleAccount::default();
        let mut looped = CycleAccount::default();
        batched.charge_many(StallBucket::BshrWaitRemote, 1000);
        for _ in 0..1000 {
            looped.charge(StallBucket::BshrWaitRemote);
        }
        assert_eq!(batched, looped);

        let mut pb = PcProfile::default();
        let mut pl = PcProfile::default();
        pb.charge_pc_many(0x40, PcStallKind::RemoteWait, 7);
        pb.charge_pc_many(0x80, PcStallKind::LocalWait, 3);
        for _ in 0..7 {
            pl.charge_pc(0x40, PcStallKind::RemoteWait);
        }
        for _ in 0..3 {
            pl.charge_pc(0x80, PcStallKind::LocalWait);
        }
        assert_eq!(pb, pl);
    }

    #[test]
    fn charge_pc_many_overflow_matches_repeated_charges() {
        let mut batched = PcProfile::default();
        let mut looped = PcProfile::default();
        for pc in 0..PC_PROFILE_CAPACITY as u64 {
            batched.charge_pc(pc * 4, PcStallKind::RemoteWait);
            looped.charge_pc(pc * 4, PcStallKind::RemoteWait);
        }
        batched.charge_pc_many(u64::MAX, PcStallKind::LocalWait, 9);
        for _ in 0..9 {
            looped.charge_pc(u64::MAX, PcStallKind::LocalWait);
        }
        assert_eq!(batched, looped);
        assert_eq!(batched.overflow(), (0, 9));
    }

    #[test]
    fn merge_sums_per_bucket() {
        let mut a = CycleAccount::default();
        a.charge(StallBucket::RuuFull);
        let mut b = CycleAccount::default();
        b.charge(StallBucket::RuuFull);
        b.charge(StallBucket::LsqFull);
        a.merge(&b);
        assert_eq!(a.get(StallBucket::RuuFull), 2);
        assert_eq!(a.get(StallBucket::LsqFull), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn labels_are_unique_and_cover_all() {
        let labels: Vec<&str> = StallBucket::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), BUCKET_COUNT);
        for (i, l) in labels.iter().enumerate() {
            assert!(!labels[..i].contains(l), "duplicate label {l}");
        }
    }

    #[test]
    fn pc_profile_sorted_and_exact() {
        let mut p = PcProfile::default();
        p.charge_pc(0x40, PcStallKind::RemoteWait);
        p.charge_pc(0x10, PcStallKind::LocalWait);
        p.charge_pc(0x40, PcStallKind::RemoteWait);
        let e = p.entries();
        assert_eq!(e.len(), 2);
        assert_eq!((e[0].pc, e[0].local_wait), (0x10, 1));
        assert_eq!((e[1].pc, e[1].remote_wait), (0x40, 2));
        assert_eq!(p.overflow(), (0, 0));
    }

    #[test]
    fn pc_profile_overflow_preserves_totals() {
        let mut p = PcProfile::default();
        for pc in 0..PC_PROFILE_CAPACITY as u64 {
            p.charge_pc(pc * 4, PcStallKind::RemoteWait);
        }
        // New PC past capacity folds into overflow; existing PCs still
        // accumulate in place.
        p.charge_pc(u64::MAX, PcStallKind::LocalWait);
        p.charge_pc(0, PcStallKind::RemoteWait);
        assert_eq!(p.entries().len(), PC_PROFILE_CAPACITY);
        assert_eq!(p.overflow(), (0, 1));
        let charged: u64 = p
            .entries()
            .iter()
            .map(|e| e.remote_wait + e.local_wait)
            .sum::<u64>()
            + p.overflow().0
            + p.overflow().1;
        assert_eq!(charged, PC_PROFILE_CAPACITY as u64 + 2);
    }

    #[test]
    fn top_hot_pcs_merges_and_orders() {
        let mut a = PcProfile::default();
        let mut b = PcProfile::default();
        for _ in 0..3 {
            a.charge_pc(0x100, PcStallKind::RemoteWait);
        }
        b.charge_pc(0x100, PcStallKind::LocalWait);
        for _ in 0..4 {
            b.charge_pc(0x200, PcStallKind::LocalWait);
        }
        // Tie between 0x100 (3+1) and 0x200 (4): pc asc breaks it.
        let top = top_hot_pcs([&a, &b], 10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].pc, 0x100);
        assert_eq!((top[0].remote_wait, top[0].local_wait), (3, 1));
        assert_eq!(top[1].pc, 0x200);
        let top1 = top_hot_pcs([&a, &b], 1);
        assert_eq!(top1.len(), 1);
    }
}
