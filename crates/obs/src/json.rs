//! A minimal JSON parser, used to validate the workspace's emitted
//! reports and traces (the build environment is offline, so no serde).
//!
//! Supports the full JSON grammar the emitters produce: objects,
//! arrays, strings with `\uXXXX`/standard escapes, numbers, booleans
//! and null. Not a general-purpose library — errors carry a byte
//! offset, nothing more.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { b: text.as_bytes(), i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { at: self.i, msg: msg.to_string() }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn lit(&mut self, text: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(text.as_bytes()) {
            self.i += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            members.push((key, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.b[self.i..self.i + 4];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogates are not paired here; the
                            // workspace emitters never produce them.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence this byte starts.
                    let start = self.i - 1;
                    let len = utf8_len(c);
                    self.i = start + len;
                    if self.i > self.b.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    match std::str::from_utf8(&self.b[start..self.i]) {
                        Ok(chunk) => s.push_str(chunk),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap_or("");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ParseError { at: start, msg: format!("bad number `{text}`") })
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_resolve() {
        let v = parse(r#""café""#).unwrap();
        assert_eq!(v.as_str(), Some("café"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse(" [ ] ").unwrap(), Value::Arr(vec![]));
    }
}
