//! Dependence-graph critical-path analysis.
//!
//! Cycle accounting (`account.rs`) says where a node's cycles go; it
//! cannot say whether a stall was *on* the end-to-end critical path or
//! hidden under other in-flight work. This module closes that gap with
//! a classic last-arrival dependence-graph walk (Fields et al. style):
//! at every retirement the core records one [`CritNode`] — the
//! instruction's pipeline timestamps plus *which input arrived last* at
//! each stage — into a bounded [`CritWindow`]. Walking the last-arrival
//! chain backwards from the newest commit attributes every cycle of the
//! covered span to exactly one edge, rolled up into four classes:
//!
//! * **compute** — execution latency, data dependences, local memory
//!   fills (including primary-cache hits and broadcasts already
//!   buffered in the BSHR — the paper's datathreading hits);
//! * **communication** — remote fills: BSHR waits for an owner's
//!   broadcast, or the traditional system's request/response round
//!   trips. Measured end-to-end from the *send* cycle the memory side
//!   stamps on cross-node fills, so bus-grant queueing is included;
//! * **structural** — issue slots lost waiting for a functional unit;
//! * **frontend** — fetch/dispatch gaps and in-order-commit
//!   serialization.
//!
//! The window is pre-allocated and overwrite-oldest with a dropped
//! counter (this file is a ds-lint hot module: the `edge*` recording
//! path is a1-clean, and ds-analyze roots its transitive passes at
//! `edge*` functions). The walk itself runs at report time only.

use crate::Cycle;
use std::collections::BTreeMap;

/// Default [`CritWindow`] capacity: the walk covers the most recent
/// ~16 K retirements — the steady-state tail of a full-budget run —
/// at ~1.25 MiB per instrumented core.
pub const DEFAULT_CRIT_WINDOW_CAPACITY: usize = 1 << 14;

/// Sentinel for [`CritNode::sent`]: no cross-node send stamp exists
/// (the fill was satisfied locally).
pub const UNKNOWN_SEND: Cycle = Cycle::MAX;

/// Hot PCs kept per report (mirrors the cycle-accounting table width).
const CRIT_PC_TOP: usize = 16;

/// How a retired instruction's completion was produced — the last
/// arrival into its *complete* event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FillKind {
    /// Functional-unit latency (ALU/branch/store address generation).
    #[default]
    Exec,
    /// A load satisfied by LSQ store forwarding.
    Forward,
    /// A load satisfied on-node: primary-cache hit, local memory, or a
    /// broadcast already buffered in the BSHR (a datathreading hit).
    LocalFill,
    /// A load that blocked on cross-node data: a BSHR wait for the
    /// owner's broadcast, or a traditional request/response round trip.
    RemoteFill,
}

/// One edge family of the last-arrival graph (kebab-case labels feed
/// folded stacks and JSON).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Issue → complete through a functional unit.
    Exec,
    /// Producer's completion → consumer readiness (register or LSQ
    /// dependence on an in-window producer).
    DataDep,
    /// Issue → complete through on-node memory.
    LocalFill,
    /// Issue → complete through LSQ store forwarding.
    StoreForward,
    /// Issue → complete waiting on cross-node data (end-to-end: owner
    /// generation, bus-grant queueing, transfer, BSHR access).
    RemoteFill,
    /// Ready → issue waiting for a functional unit.
    FuWait,
    /// Fetch/dispatch gaps (in-order front end), including redirect
    /// penalties and window-full back-pressure.
    Fetch,
    /// Commit → commit in-order serialization (done, waiting for the
    /// head or commit width).
    CommitSerial,
}

/// Number of [`EdgeKind`] families.
pub const EDGE_KIND_COUNT: usize = 8;

/// The four-way roll-up the paper's question is phrased in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeClass {
    /// Execution latency, data dependences, local fills.
    Compute,
    /// Cross-node data movement.
    Communication,
    /// Functional-unit contention.
    Structural,
    /// Fetch/dispatch/commit in-order serialization.
    Frontend,
}

/// Number of [`EdgeClass`]es.
pub const EDGE_CLASS_COUNT: usize = 4;

impl EdgeKind {
    /// Every edge kind, in label order.
    pub const ALL: [EdgeKind; EDGE_KIND_COUNT] = [
        EdgeKind::Exec,
        EdgeKind::DataDep,
        EdgeKind::LocalFill,
        EdgeKind::StoreForward,
        EdgeKind::RemoteFill,
        EdgeKind::FuWait,
        EdgeKind::Fetch,
        EdgeKind::CommitSerial,
    ];

    /// Stable kebab-case label.
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::Exec => "exec",
            EdgeKind::DataDep => "data-dep",
            EdgeKind::LocalFill => "local-fill",
            EdgeKind::StoreForward => "store-forward",
            EdgeKind::RemoteFill => "remote-fill",
            EdgeKind::FuWait => "fu-wait",
            EdgeKind::Fetch => "fetch",
            EdgeKind::CommitSerial => "commit-serial",
        }
    }

    /// The class this edge kind rolls up into.
    pub fn class(self) -> EdgeClass {
        match self {
            EdgeKind::Exec | EdgeKind::DataDep | EdgeKind::LocalFill | EdgeKind::StoreForward => {
                EdgeClass::Compute
            }
            EdgeKind::RemoteFill => EdgeClass::Communication,
            EdgeKind::FuWait => EdgeClass::Structural,
            EdgeKind::Fetch | EdgeKind::CommitSerial => EdgeClass::Frontend,
        }
    }

    fn index(self) -> usize {
        match self {
            EdgeKind::Exec => 0,
            EdgeKind::DataDep => 1,
            EdgeKind::LocalFill => 2,
            EdgeKind::StoreForward => 3,
            EdgeKind::RemoteFill => 4,
            EdgeKind::FuWait => 5,
            EdgeKind::Fetch => 6,
            EdgeKind::CommitSerial => 7,
        }
    }
}

impl EdgeClass {
    /// Every class, in label order.
    pub const ALL: [EdgeClass; EDGE_CLASS_COUNT] = [
        EdgeClass::Compute,
        EdgeClass::Communication,
        EdgeClass::Structural,
        EdgeClass::Frontend,
    ];

    /// Stable label (JSON keys, folded-stack frames).
    pub fn label(self) -> &'static str {
        match self {
            EdgeClass::Compute => "compute",
            EdgeClass::Communication => "communication",
            EdgeClass::Structural => "structural",
            EdgeClass::Frontend => "frontend",
        }
    }

    fn index(self) -> usize {
        match self {
            EdgeClass::Compute => 0,
            EdgeClass::Communication => 1,
            EdgeClass::Structural => 2,
            EdgeClass::Frontend => 3,
        }
    }
}

impl FillKind {
    /// The edge kind a completion of this fill kind contributes.
    pub fn edge(self) -> EdgeKind {
        match self {
            FillKind::Exec => EdgeKind::Exec,
            FillKind::Forward => EdgeKind::StoreForward,
            FillKind::LocalFill => EdgeKind::LocalFill,
            FillKind::RemoteFill => EdgeKind::RemoteFill,
        }
    }
}

/// One retired instruction's graph node: pipeline timestamps plus its
/// last-arrival provenance, recorded by the core at commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CritNode {
    /// Static PC of the instruction.
    pub pc: u64,
    /// Cycle the instruction entered the RUU.
    pub dispatch: Cycle,
    /// Cycle its last operand arrived (equals `dispatch` when it
    /// dispatched ready).
    pub ready: Cycle,
    /// Cycle it issued to a functional unit or the memory side.
    pub issue: Cycle,
    /// Cycle its result became available (writeback).
    pub complete: Cycle,
    /// Cycle it retired.
    pub commit: Cycle,
    /// For remote fills: the cycle the data entered the sender's output
    /// queue (broadcast send / request send), [`UNKNOWN_SEND`] otherwise.
    pub sent: Cycle,
    /// Retirement-order distance to the producer whose completion was
    /// the last arrival making this instruction ready; 0 when it
    /// dispatched ready (the frontend is then the last arrival).
    pub producer_back: u32,
    /// The last arrival into the complete event.
    pub fill: FillKind,
}

impl Default for CritNode {
    fn default() -> Self {
        CritNode {
            pc: 0,
            dispatch: 0,
            ready: 0,
            issue: 0,
            complete: 0,
            commit: 0,
            sent: UNKNOWN_SEND,
            producer_back: 0,
            fill: FillKind::Exec,
        }
    }
}

/// One PC's critical-path residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CritPc {
    /// Static PC.
    pub pc: u64,
    /// Cycles of the walked path attributed to this PC's edges.
    pub cycles: u64,
}

/// The bounded sliding window of retired-instruction graph nodes.
/// Pre-allocated, overwrite-oldest; recording never fails, blocks or
/// allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritWindow {
    /// Backing storage, allocated once; `buf.capacity()` never changes.
    buf: Vec<CritNode>,
    /// Index of the oldest retained node (meaningful once wrapped).
    head: usize,
    /// Nodes overwritten after wraparound.
    dropped: u64,
}

impl CritWindow {
    /// A window retaining at most `capacity` retirements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a critical-path window needs at least one slot");
        CritWindow { buf: Vec::with_capacity(capacity), head: 0, dropped: 0 }
    }

    /// Appends one retirement, overwriting the oldest when full. This
    /// is the per-retirement hot path (rule a1 applies).
    pub fn edge_retire(&mut self, node: CritNode) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(node);
        } else {
            self.buf[self.head] = node;
            self.head += 1;
            if self.head == self.buf.len() {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Retained nodes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing retired yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum retirements retained.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Retirements overwritten after the window wrapped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retirements recorded in total (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.buf.len() as u64 + self.dropped
    }

    /// Retained nodes, oldest to newest (retirement order).
    pub fn iter(&self) -> impl Iterator<Item = &CritNode> + '_ {
        let (tail, head) = self.buf.split_at(self.head);
        head.iter().chain(tail.iter())
    }

    /// The node at logical index `i` (0 = oldest retained).
    fn get(&self, i: usize) -> &CritNode {
        let at = self.head + i;
        if at < self.buf.len() {
            &self.buf[at]
        } else {
            &self.buf[at - self.buf.len()]
        }
    }

    /// Walks the last-arrival chain backwards from the newest commit
    /// and attributes every covered cycle to exactly one edge. Runs at
    /// report time only (allocation here is fine; recording is not).
    pub fn path_report(&self) -> CritPathNodeReport {
        let mut rep = CritPathNodeReport {
            window_recorded: self.recorded(),
            window_dropped: self.dropped,
            ..Default::default()
        };
        // End-to-end communication edge lengths over every retained
        // remote fill (not only the ones the walk lands on): complete
        // minus the cross-node send stamp. A negative-overlap case
        // cannot arise (data cannot complete before it was sent).
        for n in self.iter() {
            if n.fill == FillKind::RemoteFill && n.sent != UNKNOWN_SEND {
                let e2e = n.complete.saturating_sub(n.sent);
                rep.comm_edges += 1;
                rep.comm_edge_cycles += e2e;
                rep.comm_edge_max = rep.comm_edge_max.max(e2e);
            }
        }
        if self.buf.is_empty() {
            return rep;
        }

        enum Entry {
            /// Walking into the node's commit event.
            Commit,
            /// Walking into its complete event (via a data-dep edge).
            Complete,
            /// Walking its in-order dispatch chain.
            Dispatch,
        }

        let mut pc_cycles: BTreeMap<u64, u64> = BTreeMap::new();
        let end = self.get(self.len() - 1).commit;
        let mut cur = end;
        let mut i = self.len() - 1;
        let mut entry = Entry::Commit;
        // Each span is clamped monotone (`point.min(cur)`), so the
        // per-edge cycles telescope exactly to `end - cur` at exit —
        // the invariant behind "shares sum to 1.0".
        loop {
            let nd = *self.get(i);
            let mut attr = |kind: EdgeKind, span: u64, pc: u64| {
                rep.kind_cycles[kind.index()] += span;
                rep.class_cycles[kind.class().index()] += span;
                if span > 0 {
                    *pc_cycles.entry(pc).or_insert(0) += span;
                }
            };
            match entry {
                Entry::Commit => {
                    let head_blocked = i > 0 && self.get(i - 1).commit >= nd.complete;
                    if head_blocked {
                        // Done before the predecessor committed: the
                        // in-order commit edge was the last arrival.
                        let t = self.get(i - 1).commit.min(cur);
                        attr(EdgeKind::CommitSerial, cur - t, nd.pc);
                        cur = t;
                        i -= 1;
                    } else {
                        // Commit gated by its own completion; the
                        // commit-window pop rides on the fill edge.
                        let t = nd.complete.min(cur);
                        attr(nd.fill.edge(), cur - t, nd.pc);
                        cur = t;
                        entry = Entry::Complete;
                    }
                }
                Entry::Complete => {
                    let t_issue = nd.issue.min(cur);
                    attr(nd.fill.edge(), cur - t_issue, nd.pc);
                    cur = t_issue;
                    let t_ready = nd.ready.min(cur);
                    attr(EdgeKind::FuWait, cur - t_ready, nd.pc);
                    cur = t_ready;
                    if nd.producer_back > 0 {
                        let back = nd.producer_back as usize;
                        if back > i {
                            // The producer fell off the window.
                            rep.truncated = true;
                            break;
                        }
                        let j = i - back;
                        let p = self.get(j);
                        let t = p.complete.min(cur);
                        // The hand-off cycle belongs to the producer.
                        attr(EdgeKind::DataDep, cur - t, p.pc);
                        cur = t;
                        i = j;
                    } else {
                        let t = nd.dispatch.min(cur);
                        attr(EdgeKind::Fetch, cur - t, nd.pc);
                        cur = t;
                        entry = Entry::Dispatch;
                    }
                }
                Entry::Dispatch => {
                    if i == 0 {
                        break;
                    }
                    let prev = self.get(i - 1);
                    let t = prev.dispatch.min(cur);
                    attr(EdgeKind::Fetch, cur - t, prev.pc);
                    cur = t;
                    i -= 1;
                }
            }
        }
        if self.dropped > 0 {
            rep.truncated = true;
        }
        rep.attributed_cycles = end - cur;
        let mut pcs: Vec<CritPc> =
            pc_cycles.into_iter().map(|(pc, cycles)| CritPc { pc, cycles }).collect();
        pcs.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.pc.cmp(&b.pc)));
        pcs.truncate(CRIT_PC_TOP);
        rep.crit_pcs = pcs;
        rep
    }
}

impl Default for CritWindow {
    fn default() -> Self {
        CritWindow::with_capacity(DEFAULT_CRIT_WINDOW_CAPACITY)
    }
}

/// One node's (core's) critical-path attribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CritPathNodeReport {
    /// Cycles the backward walk covered (`newest commit - earliest
    /// event reached`). Equals the sum of `class_cycles` exactly.
    pub attributed_cycles: u64,
    /// True when the walk stopped at the window boundary instead of
    /// the start of the run (the window wrapped, or a producer was
    /// overwritten) — the attribution then covers the run's tail.
    pub truncated: bool,
    /// Retirements recorded (retained + dropped).
    pub window_recorded: u64,
    /// Retirements overwritten after wraparound.
    pub window_dropped: u64,
    /// Cycles per [`EdgeClass`] (index via `EdgeClass::ALL`).
    pub class_cycles: [u64; EDGE_CLASS_COUNT],
    /// Cycles per [`EdgeKind`] (index via `EdgeKind::ALL`).
    pub kind_cycles: [u64; EDGE_KIND_COUNT],
    /// Retained remote fills carrying a cross-node send stamp.
    pub comm_edges: u64,
    /// Sum over those fills of end-to-end cycles (complete - sent).
    pub comm_edge_cycles: u64,
    /// The longest end-to-end communication edge observed.
    pub comm_edge_max: u64,
    /// Per-PC critical-path residency, hottest first (top 16) — who is
    /// *on* the path, not merely hot.
    pub crit_pcs: Vec<CritPc>,
}

impl CritPathNodeReport {
    /// Cycles attributed to `class`.
    pub fn class(&self, class: EdgeClass) -> u64 {
        self.class_cycles[class.index()]
    }

    /// Cycles attributed to `kind`.
    pub fn kind(&self, kind: EdgeKind) -> u64 {
        self.kind_cycles[kind.index()]
    }

    /// Fraction of the attributed span on `class` (0 when nothing was
    /// attributed).
    pub fn class_share(&self, class: EdgeClass) -> f64 {
        if self.attributed_cycles == 0 {
            0.0
        } else {
            self.class(class) as f64 / self.attributed_cycles as f64
        }
    }

    /// Mean end-to-end communication edge length in cycles.
    pub fn mean_comm_edge(&self) -> f64 {
        if self.comm_edges == 0 {
            0.0
        } else {
            self.comm_edge_cycles as f64 / self.comm_edges as f64
        }
    }
}

/// The run-level critical-path report on `RunResult::metrics`: one
/// entry per node (every node retires the full instruction stream, so
/// each has its own path).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CritPathReport {
    /// Per-node attributions, indexed by node id.
    pub nodes: Vec<CritPathNodeReport>,
}

impl CritPathReport {
    /// Attributed cycles summed over nodes.
    pub fn attributed_total(&self) -> u64 {
        self.nodes.iter().map(|n| n.attributed_cycles).sum()
    }

    /// Cycles on `class` summed over nodes.
    pub fn class_total(&self, class: EdgeClass) -> u64 {
        self.nodes.iter().map(|n| n.class(class)).sum()
    }

    /// Machine-wide share of the attributed path on `class`.
    pub fn class_share(&self, class: EdgeClass) -> f64 {
        let total = self.attributed_total();
        if total == 0 {
            0.0
        } else {
            self.class_total(class) as f64 / total as f64
        }
    }

    /// Machine-wide communication share — the paper's "is the
    /// broadcast on the critical path?" number.
    pub fn communication_share(&self) -> f64 {
        self.class_share(EdgeClass::Communication)
    }

    /// Window drops summed over nodes (non-zero means tail-only
    /// attribution).
    pub fn dropped_total(&self) -> u64 {
        self.nodes.iter().map(|n| n.window_dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(
        pc: u64,
        dispatch: Cycle,
        ready: Cycle,
        issue: Cycle,
        complete: Cycle,
        commit: Cycle,
    ) -> CritNode {
        CritNode { pc, dispatch, ready, issue, complete, commit, ..Default::default() }
    }

    #[test]
    fn empty_window_reports_nothing() {
        let w = CritWindow::with_capacity(8);
        let r = w.path_report();
        assert_eq!(r.attributed_cycles, 0);
        assert!(!r.truncated);
        assert!(r.crit_pcs.is_empty());
    }

    #[test]
    fn single_alu_instruction_attributes_its_pipeline() {
        let mut w = CritWindow::with_capacity(8);
        // dispatch 0, ready 0, issue 2 (fu wait), complete 5, commit 6.
        let mut n = node(0x100, 0, 0, 2, 5, 6);
        n.fill = FillKind::Exec;
        w.edge_retire(n);
        let r = w.path_report();
        assert_eq!(r.attributed_cycles, 6);
        assert_eq!(r.kind(EdgeKind::Exec), 4, "issue->complete plus the commit pop");
        assert_eq!(r.kind(EdgeKind::FuWait), 2);
        assert_eq!(r.class(EdgeClass::Compute), 4);
        assert_eq!(r.class(EdgeClass::Structural), 2);
        assert_eq!(r.class_cycles.iter().sum::<u64>(), r.attributed_cycles);
    }

    #[test]
    fn data_dependence_jumps_to_the_producer() {
        let mut w = CritWindow::with_capacity(8);
        // Producer: load completing at 10, committing at 11.
        let mut p = node(0x100, 0, 0, 1, 10, 11);
        p.fill = FillKind::LocalFill;
        w.edge_retire(p);
        // Consumer: ready the cycle the producer completed, one-cycle
        // ALU, committing right behind.
        let mut c = node(0x104, 1, 10, 10, 11, 12);
        c.fill = FillKind::Exec;
        c.producer_back = 1;
        w.edge_retire(c);
        let r = w.path_report();
        assert_eq!(r.attributed_cycles, 12);
        // Consumer: commit-pop+exec 2, then data-dep 0 to producer's
        // complete at 10; producer: local fill 9 (issue 1 -> commit 11
        // is head-gated... producer chain: complete 10 -> issue 1),
        // fetch edges close the rest.
        assert!(r.kind(EdgeKind::LocalFill) >= 9, "{r:?}");
        assert_eq!(r.class_cycles.iter().sum::<u64>(), r.attributed_cycles);
        assert!(r.crit_pcs.iter().any(|p| p.pc == 0x100), "producer is on the path");
    }

    #[test]
    fn remote_fill_is_communication_and_measured_end_to_end() {
        let mut w = CritWindow::with_capacity(8);
        // Load issues at 5, the owner's broadcast entered its queue at
        // 2 (datathreading overlap), arrives/completes at 40.
        let mut n = node(0x200, 0, 0, 5, 40, 41);
        n.fill = FillKind::RemoteFill;
        n.sent = 2;
        w.edge_retire(n);
        let r = w.path_report();
        assert_eq!(r.kind(EdgeKind::RemoteFill), 36, "issue->complete plus commit pop");
        assert_eq!(r.class(EdgeClass::Communication), 36);
        assert_eq!(r.comm_edges, 1);
        assert_eq!(r.comm_edge_cycles, 38, "end-to-end from the send stamp");
        assert_eq!(r.comm_edge_max, 38);
        assert_eq!(r.class_cycles.iter().sum::<u64>(), r.attributed_cycles);
    }

    #[test]
    fn commit_serialization_walks_the_in_order_edge() {
        let mut w = CritWindow::with_capacity(8);
        // A slow head instruction...
        let mut head = node(0x300, 0, 0, 1, 50, 51);
        head.fill = FillKind::LocalFill;
        w.edge_retire(head);
        // ...and a fast one completing at 3 but committing behind it.
        let fast = node(0x304, 1, 1, 2, 3, 51);
        w.edge_retire(fast);
        let r = w.path_report();
        assert_eq!(r.kind(EdgeKind::CommitSerial), 0, "same-cycle commit costs nothing");
        assert!(r.kind(EdgeKind::LocalFill) >= 49, "the slow head dominates: {r:?}");
        assert_eq!(r.class_cycles.iter().sum::<u64>(), r.attributed_cycles);
    }

    #[test]
    fn wraparound_overwrites_oldest_counts_drops_and_truncates() {
        let mut w = CritWindow::with_capacity(4);
        for k in 0..10u64 {
            let mut n = node(0x400 + 4 * k, k, k, k + 1, k + 2, k + 3);
            // Chain every instruction to its predecessor so the walk
            // must eventually chase a dropped producer.
            n.producer_back = if k > 0 { 1 } else { 0 };
            w.edge_retire(n);
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.dropped(), 6);
        assert_eq!(w.recorded(), 10);
        let oldest: Vec<u64> = w.iter().map(|n| n.dispatch).collect();
        assert_eq!(oldest, vec![6, 7, 8, 9], "oldest nodes were overwritten");
        let r = w.path_report();
        assert!(r.truncated, "walk cannot reach the run start");
        assert_eq!(r.window_dropped, 6);
        assert_eq!(r.class_cycles.iter().sum::<u64>(), r.attributed_cycles);
    }

    #[test]
    fn shares_sum_to_one_and_pcs_are_ranked() {
        let mut w = CritWindow::with_capacity(16);
        let mut lood = node(0x500, 0, 0, 1, 30, 31);
        lood.fill = FillKind::RemoteFill;
        lood.sent = 0;
        w.edge_retire(lood);
        let mut dep = node(0x504, 1, 30, 31, 33, 34);
        dep.producer_back = 1;
        w.edge_retire(dep);
        let r = w.path_report();
        let share_sum: f64 = EdgeClass::ALL.iter().map(|&c| r.class_share(c)).sum();
        assert!((share_sum - 1.0).abs() < 1e-12, "shares sum to 1.0, got {share_sum}");
        for pair in r.crit_pcs.windows(2) {
            assert!(
                pair[0].cycles > pair[1].cycles
                    || (pair[0].cycles == pair[1].cycles && pair[0].pc < pair[1].pc),
                "crit-PC table out of order: {:?}",
                r.crit_pcs
            );
        }
    }

    #[test]
    fn recording_never_grows_the_buffer() {
        let mut w = CritWindow::with_capacity(8);
        let cap = w.capacity();
        let ptr = w.buf.as_ptr();
        for k in 0..100u64 {
            w.edge_retire(node(0, k, k, k, k, k));
        }
        assert_eq!(w.capacity(), cap, "capacity must never change");
        assert_eq!(w.buf.as_ptr(), ptr, "storage must never reallocate");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_is_rejected() {
        let _ = CritWindow::with_capacity(0);
    }

    #[test]
    fn report_is_deterministic() {
        let build = || {
            let mut w = CritWindow::with_capacity(8);
            for k in 0..20u64 {
                let mut n = node(0x600 + 4 * (k % 3), k, k, k + 1, k + 3, k + 4);
                n.producer_back = if k % 2 == 0 { 1 } else { 0 };
                w.edge_retire(n);
            }
            w.path_report()
        };
        assert_eq!(build(), build());
    }
}
