//! Dependence-graph critical-path analysis.
//!
//! Cycle accounting (`account.rs`) says where a node's cycles go; it
//! cannot say whether a stall was *on* the end-to-end critical path or
//! hidden under other in-flight work. This module closes that gap with
//! a classic last-arrival dependence-graph walk (Fields et al. style):
//! at every retirement the core records one [`CritNode`] — the
//! instruction's pipeline timestamps plus *which input arrived last* at
//! each stage — into a bounded [`CritWindow`]. Walking the last-arrival
//! chain backwards from the newest commit attributes every cycle of the
//! covered span to exactly one edge, rolled up into four classes:
//!
//! * **compute** — execution latency, data dependences, local memory
//!   fills (including primary-cache hits and broadcasts already
//!   buffered in the BSHR — the paper's datathreading hits);
//! * **communication** — remote fills: BSHR waits for an owner's
//!   broadcast, or the traditional system's request/response round
//!   trips. Measured end-to-end from the *send* cycle the memory side
//!   stamps on cross-node fills, so bus-grant queueing is included;
//! * **structural** — issue slots lost waiting for a functional unit;
//! * **frontend** — fetch/dispatch gaps and in-order-commit
//!   serialization.
//!
//! The window is pre-allocated and segmented: when the buffer fills,
//! the full segment is walked *then* — allocation-free, into a
//! pre-allocated accumulator — and cleared, so attribution covers the
//! whole run with a cache-resident buffer and nothing is ever dropped.
//! (This file is a ds-lint hot module: the `edge*`/`charge*` recording
//! path is a1-clean, and ds-analyze roots its transitive passes at
//! `edge*` functions.) The report-time walk only covers the retained
//! tail segment and folds it into a copy of the accumulator.
//!
//! Segment boundaries cost a little precision: a producer retired in an
//! already-flushed segment cannot be chased (the walk truncates there),
//! and adjacent segments' covered spans overlap by up to a pipeline
//! depth, so `attributed_cycles` can slightly exceed wall-clock cycles.
//! Both effects are bounded per segment and vanish against full-run
//! totals.

use crate::Cycle;

/// Default [`CritWindow`] capacity — the *segment* size. The walk
/// flushes each full segment into the accumulator, so any capacity
/// attributes the whole run; this default keeps the buffer
/// (~1.25 MiB per instrumented core) cache-resident while giving the
/// backward walk ~16 K retirements of producer reach.
pub const DEFAULT_CRIT_WINDOW_CAPACITY: usize = 1 << 14;

/// Slots in the pre-allocated per-PC residency table (power of two).
const PC_TABLE_SLOTS: usize = 4096;

/// Bounded linear-probe length for [`PcTable::charge_pc`]; cycles that
/// cannot claim a slot within it land in the overflow counter.
const PC_PROBE_LIMIT: usize = 32;

/// Sentinel for [`CritNode::sent`]: no cross-node send stamp exists
/// (the fill was satisfied locally).
pub const UNKNOWN_SEND: Cycle = Cycle::MAX;

/// Hot PCs kept per report (mirrors the cycle-accounting table width).
const CRIT_PC_TOP: usize = 16;

/// How a retired instruction's completion was produced — the last
/// arrival into its *complete* event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FillKind {
    /// Functional-unit latency (ALU/branch/store address generation).
    #[default]
    Exec,
    /// A load satisfied by LSQ store forwarding.
    Forward,
    /// A load satisfied on-node: primary-cache hit, local memory, or a
    /// broadcast already buffered in the BSHR (a datathreading hit).
    LocalFill,
    /// A load that blocked on cross-node data: a BSHR wait for the
    /// owner's broadcast, or a traditional request/response round trip.
    RemoteFill,
}

/// One edge family of the last-arrival graph (kebab-case labels feed
/// folded stacks and JSON).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Issue → complete through a functional unit.
    Exec,
    /// Producer's completion → consumer readiness (register or LSQ
    /// dependence on an in-window producer).
    DataDep,
    /// Issue → complete through on-node memory.
    LocalFill,
    /// Issue → complete through LSQ store forwarding.
    StoreForward,
    /// Issue → complete waiting on cross-node data (end-to-end: owner
    /// generation, bus-grant queueing, transfer, BSHR access).
    RemoteFill,
    /// Ready → issue waiting for a functional unit.
    FuWait,
    /// Fetch/dispatch gaps (in-order front end), including redirect
    /// penalties and window-full back-pressure.
    Fetch,
    /// Commit → commit in-order serialization (done, waiting for the
    /// head or commit width).
    CommitSerial,
}

/// Number of [`EdgeKind`] families.
pub const EDGE_KIND_COUNT: usize = 8;

/// The four-way roll-up the paper's question is phrased in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeClass {
    /// Execution latency, data dependences, local fills.
    Compute,
    /// Cross-node data movement.
    Communication,
    /// Functional-unit contention.
    Structural,
    /// Fetch/dispatch/commit in-order serialization.
    Frontend,
}

/// Number of [`EdgeClass`]es.
pub const EDGE_CLASS_COUNT: usize = 4;

impl EdgeKind {
    /// Every edge kind, in label order.
    pub const ALL: [EdgeKind; EDGE_KIND_COUNT] = [
        EdgeKind::Exec,
        EdgeKind::DataDep,
        EdgeKind::LocalFill,
        EdgeKind::StoreForward,
        EdgeKind::RemoteFill,
        EdgeKind::FuWait,
        EdgeKind::Fetch,
        EdgeKind::CommitSerial,
    ];

    /// Stable kebab-case label.
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::Exec => "exec",
            EdgeKind::DataDep => "data-dep",
            EdgeKind::LocalFill => "local-fill",
            EdgeKind::StoreForward => "store-forward",
            EdgeKind::RemoteFill => "remote-fill",
            EdgeKind::FuWait => "fu-wait",
            EdgeKind::Fetch => "fetch",
            EdgeKind::CommitSerial => "commit-serial",
        }
    }

    /// The class this edge kind rolls up into.
    pub fn class(self) -> EdgeClass {
        match self {
            EdgeKind::Exec | EdgeKind::DataDep | EdgeKind::LocalFill | EdgeKind::StoreForward => {
                EdgeClass::Compute
            }
            EdgeKind::RemoteFill => EdgeClass::Communication,
            EdgeKind::FuWait => EdgeClass::Structural,
            EdgeKind::Fetch | EdgeKind::CommitSerial => EdgeClass::Frontend,
        }
    }

    fn index(self) -> usize {
        match self {
            EdgeKind::Exec => 0,
            EdgeKind::DataDep => 1,
            EdgeKind::LocalFill => 2,
            EdgeKind::StoreForward => 3,
            EdgeKind::RemoteFill => 4,
            EdgeKind::FuWait => 5,
            EdgeKind::Fetch => 6,
            EdgeKind::CommitSerial => 7,
        }
    }
}

impl EdgeClass {
    /// Every class, in label order.
    pub const ALL: [EdgeClass; EDGE_CLASS_COUNT] = [
        EdgeClass::Compute,
        EdgeClass::Communication,
        EdgeClass::Structural,
        EdgeClass::Frontend,
    ];

    /// Stable label (JSON keys, folded-stack frames).
    pub fn label(self) -> &'static str {
        match self {
            EdgeClass::Compute => "compute",
            EdgeClass::Communication => "communication",
            EdgeClass::Structural => "structural",
            EdgeClass::Frontend => "frontend",
        }
    }

    fn index(self) -> usize {
        match self {
            EdgeClass::Compute => 0,
            EdgeClass::Communication => 1,
            EdgeClass::Structural => 2,
            EdgeClass::Frontend => 3,
        }
    }
}

impl FillKind {
    /// The edge kind a completion of this fill kind contributes.
    pub fn edge(self) -> EdgeKind {
        match self {
            FillKind::Exec => EdgeKind::Exec,
            FillKind::Forward => EdgeKind::StoreForward,
            FillKind::LocalFill => EdgeKind::LocalFill,
            FillKind::RemoteFill => EdgeKind::RemoteFill,
        }
    }
}

/// One retired instruction's graph node: pipeline timestamps plus its
/// last-arrival provenance, recorded by the core at commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CritNode {
    /// Static PC of the instruction.
    pub pc: u64,
    /// Cycle the instruction entered the RUU.
    pub dispatch: Cycle,
    /// Cycle its last operand arrived (equals `dispatch` when it
    /// dispatched ready).
    pub ready: Cycle,
    /// Cycle it issued to a functional unit or the memory side.
    pub issue: Cycle,
    /// Cycle its result became available (writeback).
    pub complete: Cycle,
    /// Cycle it retired.
    pub commit: Cycle,
    /// For remote fills: the cycle the data entered the sender's output
    /// queue (broadcast send / request send), [`UNKNOWN_SEND`] otherwise.
    pub sent: Cycle,
    /// Retirement-order distance to the producer whose completion was
    /// the last arrival making this instruction ready; 0 when it
    /// dispatched ready (the frontend is then the last arrival).
    pub producer_back: u32,
    /// The last arrival into the complete event.
    pub fill: FillKind,
}

impl Default for CritNode {
    fn default() -> Self {
        CritNode {
            pc: 0,
            dispatch: 0,
            ready: 0,
            issue: 0,
            complete: 0,
            commit: 0,
            sent: UNKNOWN_SEND,
            producer_back: 0,
            fill: FillKind::Exec,
        }
    }
}

/// One PC's critical-path residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CritPc {
    /// Static PC.
    pub pc: u64,
    /// Cycles of the walked path attributed to this PC's edges.
    pub cycles: u64,
}

/// Open-addressed per-PC cycle counters, allocated once at window
/// construction. Occupied slots have `cycles > 0` (the walk never
/// charges a zero span into the table), so no tombstones are needed.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PcTable {
    /// Fixed slot array; never grows.
    slots: Vec<CritPc>,
    /// Cycles that could not claim a slot within the probe limit. The
    /// kind/class totals stay exact regardless; only the per-PC ranking
    /// loses these.
    overflow_cycles: u64,
}

impl PcTable {
    fn new() -> Self {
        PcTable { slots: vec![CritPc { pc: 0, cycles: 0 }; PC_TABLE_SLOTS], overflow_cycles: 0 }
    }

    /// Adds `cycles` to `pc`'s residency. Runs on the segment-flush
    /// path under `edge_retire` (rule a1 applies: bounded probing,
    /// no allocation).
    fn charge_pc(&mut self, pc: u64, cycles: u64) {
        let mask = self.slots.len() - 1;
        let mut at = (pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize & mask;
        for _ in 0..PC_PROBE_LIMIT {
            let slot = &mut self.slots[at];
            if slot.cycles == 0 {
                slot.pc = pc;
                slot.cycles = cycles;
                return;
            }
            if slot.pc == pc {
                slot.cycles += cycles;
                return;
            }
            at = (at + 1) & mask;
        }
        self.overflow_cycles += cycles;
    }

    /// Occupied entries ranked hottest-first, ties toward the lower PC
    /// (report time; allocation is fine here).
    fn ranked(&self) -> Vec<CritPc> {
        let mut pcs: Vec<CritPc> =
            self.slots.iter().copied().filter(|s| s.cycles > 0).collect();
        pcs.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.pc.cmp(&b.pc)));
        pcs.truncate(CRIT_PC_TOP);
        pcs
    }
}

/// The running attribution state segments are flushed into: everything
/// a [`CritPathNodeReport`] needs except the not-yet-flushed tail.
/// Pre-allocated with the window; folding a segment in never allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CritAccum {
    /// Cycles covered by all flushed segment walks.
    attributed: u64,
    /// True once any segment walk broke on a producer retired in an
    /// earlier (already flushed) segment.
    truncated: bool,
    /// Nodes folded in and discarded by segment flushes.
    flushed: u64,
    /// Cycles per [`EdgeKind`].
    kind_cycles: [u64; EDGE_KIND_COUNT],
    /// Cycles per [`EdgeClass`].
    class_cycles: [u64; EDGE_CLASS_COUNT],
    /// Remote fills carrying a cross-node send stamp.
    comm_edges: u64,
    /// Sum of their end-to-end cycles.
    comm_edge_cycles: u64,
    /// The longest end-to-end communication edge observed.
    comm_edge_max: u64,
    /// Per-PC residency.
    pcs: PcTable,
}

impl CritAccum {
    fn new() -> Self {
        CritAccum {
            attributed: 0,
            truncated: false,
            flushed: 0,
            kind_cycles: [0; EDGE_KIND_COUNT],
            class_cycles: [0; EDGE_CLASS_COUNT],
            comm_edges: 0,
            comm_edge_cycles: 0,
            comm_edge_max: 0,
            pcs: PcTable::new(),
        }
    }

    /// Attributes `span` cycles of `kind` at `pc`. Runs on the
    /// segment-flush path under `edge_retire` (rule a1 applies).
    fn charge(&mut self, kind: EdgeKind, span: u64, pc: u64) {
        self.kind_cycles[kind.index()] += span;
        self.class_cycles[kind.class().index()] += span;
        if span > 0 {
            self.pcs.charge_pc(pc, span);
        }
    }
}

/// Walks one contiguous retirement-ordered segment backwards from its
/// newest commit along the last-arrival chain, attributing every
/// covered cycle to exactly one edge, and folds the result into `acc`.
/// Runs on the segment-flush path under `edge_retire` (rule a1's
/// transitive closure applies: nothing here allocates) and once more at
/// report time over the retained tail.
fn walk_nodes(nodes: &[CritNode], acc: &mut CritAccum) {
    // End-to-end communication edge lengths over every remote fill in
    // the segment (not only the ones the walk lands on): complete
    // minus the cross-node send stamp. A negative-overlap case cannot
    // arise (data cannot complete before it was sent).
    for n in nodes {
        if n.fill == FillKind::RemoteFill && n.sent != UNKNOWN_SEND {
            let e2e = n.complete.saturating_sub(n.sent);
            acc.comm_edges += 1;
            acc.comm_edge_cycles += e2e;
            acc.comm_edge_max = acc.comm_edge_max.max(e2e);
        }
    }
    let Some(last) = nodes.last() else { return };

    enum Entry {
        /// Walking into the node's commit event.
        Commit,
        /// Walking into its complete event (via a data-dep edge).
        Complete,
        /// Walking its in-order dispatch chain.
        Dispatch,
    }

    let end = last.commit;
    let mut cur = end;
    let mut i = nodes.len() - 1;
    let mut entry = Entry::Commit;
    // Each span is clamped monotone (`point.min(cur)`), so the
    // per-edge cycles telescope exactly to `end - cur` at exit —
    // the invariant behind "shares sum to 1.0".
    loop {
        let nd = nodes[i];
        match entry {
            Entry::Commit => {
                let head_blocked = i > 0 && nodes[i - 1].commit >= nd.complete;
                if head_blocked {
                    // Done before the predecessor committed: the
                    // in-order commit edge was the last arrival.
                    let t = nodes[i - 1].commit.min(cur);
                    acc.charge(EdgeKind::CommitSerial, cur - t, nd.pc);
                    cur = t;
                    i -= 1;
                } else {
                    // Commit gated by its own completion; the
                    // commit-window pop rides on the fill edge.
                    let t = nd.complete.min(cur);
                    acc.charge(nd.fill.edge(), cur - t, nd.pc);
                    cur = t;
                    entry = Entry::Complete;
                }
            }
            Entry::Complete => {
                let t_issue = nd.issue.min(cur);
                acc.charge(nd.fill.edge(), cur - t_issue, nd.pc);
                cur = t_issue;
                let t_ready = nd.ready.min(cur);
                acc.charge(EdgeKind::FuWait, cur - t_ready, nd.pc);
                cur = t_ready;
                if nd.producer_back > 0 {
                    let back = nd.producer_back as usize;
                    if back > i {
                        // The producer retired in an earlier segment.
                        acc.truncated = true;
                        break;
                    }
                    let j = i - back;
                    let p = &nodes[j];
                    let t = p.complete.min(cur);
                    // The hand-off cycle belongs to the producer.
                    acc.charge(EdgeKind::DataDep, cur - t, p.pc);
                    cur = t;
                    i = j;
                } else {
                    let t = nd.dispatch.min(cur);
                    acc.charge(EdgeKind::Fetch, cur - t, nd.pc);
                    cur = t;
                    entry = Entry::Dispatch;
                }
            }
            Entry::Dispatch => {
                if i == 0 {
                    break;
                }
                let prev = &nodes[i - 1];
                let t = prev.dispatch.min(cur);
                acc.charge(EdgeKind::Fetch, cur - t, prev.pc);
                cur = t;
                i -= 1;
            }
        }
    }
    acc.attributed += end - cur;
}

/// The bounded segment buffer of retired-instruction graph nodes plus
/// the accumulator full segments are flushed into. Pre-allocated;
/// recording never fails, blocks or allocates, and attribution covers
/// the whole run regardless of capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritWindow {
    /// Backing storage, allocated once; `buf.capacity()` never changes.
    buf: Vec<CritNode>,
    /// Attribution folded in from flushed segments.
    acc: CritAccum,
}

impl CritWindow {
    /// A window walking segments of at most `capacity` retirements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a critical-path window needs at least one slot");
        CritWindow { buf: Vec::with_capacity(capacity), acc: CritAccum::new() }
    }

    /// Appends one retirement. A full buffer is first walked into the
    /// accumulator and cleared — amortized O(1). This is the
    /// per-retirement hot path (rule a1 applies).
    pub fn edge_retire(&mut self, node: CritNode) {
        if self.buf.len() == self.buf.capacity() {
            walk_nodes(&self.buf, &mut self.acc);
            self.acc.flushed += self.buf.len() as u64;
            self.buf.clear();
        }
        self.buf.push(node);
    }

    /// Retained (not yet flushed) nodes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing retired yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty() && self.acc.flushed == 0
    }

    /// Maximum retirements retained before a segment flush.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Retirements recorded in total (retained + flushed). All of them
    /// contribute to the attribution; none are dropped.
    pub fn recorded(&self) -> u64 {
        self.buf.len() as u64 + self.acc.flushed
    }

    /// Retained nodes, oldest to newest (retirement order).
    pub fn iter(&self) -> impl Iterator<Item = &CritNode> + '_ {
        self.buf.iter()
    }

    /// Folds the retained tail segment into a copy of the accumulator
    /// and reports the whole-run attribution. Runs at report time only
    /// (allocation here is fine; recording is not).
    pub fn path_report(&self) -> CritPathNodeReport {
        let mut acc = self.acc.clone();
        walk_nodes(&self.buf, &mut acc);
        CritPathNodeReport {
            attributed_cycles: acc.attributed,
            truncated: acc.truncated,
            window_recorded: self.recorded(),
            window_dropped: 0,
            class_cycles: acc.class_cycles,
            kind_cycles: acc.kind_cycles,
            comm_edges: acc.comm_edges,
            comm_edge_cycles: acc.comm_edge_cycles,
            comm_edge_max: acc.comm_edge_max,
            crit_pcs: acc.pcs.ranked(),
        }
    }
}

impl Default for CritWindow {
    fn default() -> Self {
        CritWindow::with_capacity(DEFAULT_CRIT_WINDOW_CAPACITY)
    }
}

/// One node's (core's) critical-path attribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CritPathNodeReport {
    /// Cycles the segment walks covered, summed over every flushed
    /// segment plus the retained tail. Equals the sum of
    /// `class_cycles` exactly; adjacent segments' spans can overlap by
    /// up to a pipeline depth, so this may slightly exceed wall-clock
    /// cycles on long runs.
    pub attributed_cycles: u64,
    /// True when some segment walk broke on a producer retired in an
    /// earlier, already-flushed segment (a bounded attribution gap at
    /// that segment boundary).
    pub truncated: bool,
    /// Retirements recorded (retained + flushed).
    pub window_recorded: u64,
    /// Retirements recorded but never attributed. Always 0 since
    /// segment flushing replaced overwrite-drops; the field (and its
    /// JSON `dropped` mirror) stays so report consumers can keep
    /// checking coverage the same way.
    pub window_dropped: u64,
    /// Cycles per [`EdgeClass`] (index via `EdgeClass::ALL`).
    pub class_cycles: [u64; EDGE_CLASS_COUNT],
    /// Cycles per [`EdgeKind`] (index via `EdgeKind::ALL`).
    pub kind_cycles: [u64; EDGE_KIND_COUNT],
    /// Retained remote fills carrying a cross-node send stamp.
    pub comm_edges: u64,
    /// Sum over those fills of end-to-end cycles (complete - sent).
    pub comm_edge_cycles: u64,
    /// The longest end-to-end communication edge observed.
    pub comm_edge_max: u64,
    /// Per-PC critical-path residency, hottest first (top 16) — who is
    /// *on* the path, not merely hot.
    pub crit_pcs: Vec<CritPc>,
}

impl CritPathNodeReport {
    /// Cycles attributed to `class`.
    pub fn class(&self, class: EdgeClass) -> u64 {
        self.class_cycles[class.index()]
    }

    /// Cycles attributed to `kind`.
    pub fn kind(&self, kind: EdgeKind) -> u64 {
        self.kind_cycles[kind.index()]
    }

    /// Fraction of the attributed span on `class` (0 when nothing was
    /// attributed).
    pub fn class_share(&self, class: EdgeClass) -> f64 {
        if self.attributed_cycles == 0 {
            0.0
        } else {
            self.class(class) as f64 / self.attributed_cycles as f64
        }
    }

    /// Mean end-to-end communication edge length in cycles.
    pub fn mean_comm_edge(&self) -> f64 {
        if self.comm_edges == 0 {
            0.0
        } else {
            self.comm_edge_cycles as f64 / self.comm_edges as f64
        }
    }
}

/// The run-level critical-path report on `RunResult::metrics`: one
/// entry per node (every node retires the full instruction stream, so
/// each has its own path).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CritPathReport {
    /// Per-node attributions, indexed by node id.
    pub nodes: Vec<CritPathNodeReport>,
}

impl CritPathReport {
    /// Attributed cycles summed over nodes.
    pub fn attributed_total(&self) -> u64 {
        self.nodes.iter().map(|n| n.attributed_cycles).sum()
    }

    /// Cycles on `class` summed over nodes.
    pub fn class_total(&self, class: EdgeClass) -> u64 {
        self.nodes.iter().map(|n| n.class(class)).sum()
    }

    /// Machine-wide share of the attributed path on `class`.
    pub fn class_share(&self, class: EdgeClass) -> f64 {
        let total = self.attributed_total();
        if total == 0 {
            0.0
        } else {
            self.class_total(class) as f64 / total as f64
        }
    }

    /// Machine-wide communication share — the paper's "is the
    /// broadcast on the critical path?" number.
    pub fn communication_share(&self) -> f64 {
        self.class_share(EdgeClass::Communication)
    }

    /// Window drops summed over nodes (non-zero would mean tail-only
    /// attribution; segment flushing keeps this at 0).
    pub fn dropped_total(&self) -> u64 {
        self.nodes.iter().map(|n| n.window_dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(
        pc: u64,
        dispatch: Cycle,
        ready: Cycle,
        issue: Cycle,
        complete: Cycle,
        commit: Cycle,
    ) -> CritNode {
        CritNode { pc, dispatch, ready, issue, complete, commit, ..Default::default() }
    }

    #[test]
    fn empty_window_reports_nothing() {
        let w = CritWindow::with_capacity(8);
        let r = w.path_report();
        assert_eq!(r.attributed_cycles, 0);
        assert!(!r.truncated);
        assert!(r.crit_pcs.is_empty());
    }

    #[test]
    fn single_alu_instruction_attributes_its_pipeline() {
        let mut w = CritWindow::with_capacity(8);
        // dispatch 0, ready 0, issue 2 (fu wait), complete 5, commit 6.
        let mut n = node(0x100, 0, 0, 2, 5, 6);
        n.fill = FillKind::Exec;
        w.edge_retire(n);
        let r = w.path_report();
        assert_eq!(r.attributed_cycles, 6);
        assert_eq!(r.kind(EdgeKind::Exec), 4, "issue->complete plus the commit pop");
        assert_eq!(r.kind(EdgeKind::FuWait), 2);
        assert_eq!(r.class(EdgeClass::Compute), 4);
        assert_eq!(r.class(EdgeClass::Structural), 2);
        assert_eq!(r.class_cycles.iter().sum::<u64>(), r.attributed_cycles);
    }

    #[test]
    fn data_dependence_jumps_to_the_producer() {
        let mut w = CritWindow::with_capacity(8);
        // Producer: load completing at 10, committing at 11.
        let mut p = node(0x100, 0, 0, 1, 10, 11);
        p.fill = FillKind::LocalFill;
        w.edge_retire(p);
        // Consumer: ready the cycle the producer completed, one-cycle
        // ALU, committing right behind.
        let mut c = node(0x104, 1, 10, 10, 11, 12);
        c.fill = FillKind::Exec;
        c.producer_back = 1;
        w.edge_retire(c);
        let r = w.path_report();
        assert_eq!(r.attributed_cycles, 12);
        // Consumer: commit-pop+exec 2, then data-dep 0 to producer's
        // complete at 10; producer: local fill 9 (issue 1 -> commit 11
        // is head-gated... producer chain: complete 10 -> issue 1),
        // fetch edges close the rest.
        assert!(r.kind(EdgeKind::LocalFill) >= 9, "{r:?}");
        assert_eq!(r.class_cycles.iter().sum::<u64>(), r.attributed_cycles);
        assert!(r.crit_pcs.iter().any(|p| p.pc == 0x100), "producer is on the path");
    }

    #[test]
    fn remote_fill_is_communication_and_measured_end_to_end() {
        let mut w = CritWindow::with_capacity(8);
        // Load issues at 5, the owner's broadcast entered its queue at
        // 2 (datathreading overlap), arrives/completes at 40.
        let mut n = node(0x200, 0, 0, 5, 40, 41);
        n.fill = FillKind::RemoteFill;
        n.sent = 2;
        w.edge_retire(n);
        let r = w.path_report();
        assert_eq!(r.kind(EdgeKind::RemoteFill), 36, "issue->complete plus commit pop");
        assert_eq!(r.class(EdgeClass::Communication), 36);
        assert_eq!(r.comm_edges, 1);
        assert_eq!(r.comm_edge_cycles, 38, "end-to-end from the send stamp");
        assert_eq!(r.comm_edge_max, 38);
        assert_eq!(r.class_cycles.iter().sum::<u64>(), r.attributed_cycles);
    }

    #[test]
    fn commit_serialization_walks_the_in_order_edge() {
        let mut w = CritWindow::with_capacity(8);
        // A slow head instruction...
        let mut head = node(0x300, 0, 0, 1, 50, 51);
        head.fill = FillKind::LocalFill;
        w.edge_retire(head);
        // ...and a fast one completing at 3 but committing behind it.
        let fast = node(0x304, 1, 1, 2, 3, 51);
        w.edge_retire(fast);
        let r = w.path_report();
        assert_eq!(r.kind(EdgeKind::CommitSerial), 0, "same-cycle commit costs nothing");
        assert!(r.kind(EdgeKind::LocalFill) >= 49, "the slow head dominates: {r:?}");
        assert_eq!(r.class_cycles.iter().sum::<u64>(), r.attributed_cycles);
    }

    #[test]
    fn full_buffer_flushes_the_segment_and_drops_nothing() {
        let mut w = CritWindow::with_capacity(4);
        for k in 0..10u64 {
            let mut n = node(0x400 + 4 * k, k, k, k + 1, k + 2, k + 3);
            // Chain every instruction to its predecessor so some walk
            // must chase a producer flushed with an earlier segment.
            n.producer_back = if k > 0 { 1 } else { 0 };
            w.edge_retire(n);
        }
        // Segments of 4 flushed twice (at pushes 5 and 9): two nodes
        // retained, eight folded into the accumulator, none dropped.
        assert_eq!(w.len(), 2);
        assert_eq!(w.recorded(), 10);
        let retained: Vec<u64> = w.iter().map(|n| n.dispatch).collect();
        assert_eq!(retained, vec![8, 9], "flushed segments leave only the tail");
        let r = w.path_report();
        assert_eq!(r.window_dropped, 0, "segment flushing never drops");
        assert!(r.truncated, "cross-segment producers cannot be chased");
        // Coverage spans the whole run even though the buffer holds a
        // quarter of it (boundary overlap can push it past end-to-end).
        assert!(r.attributed_cycles >= 12, "{r:?}");
        assert_eq!(r.class_cycles.iter().sum::<u64>(), r.attributed_cycles);
        assert!(r.crit_pcs.iter().any(|p| p.pc == 0x400), "first segment's PCs persist");
    }

    #[test]
    fn segment_boundary_overlap_is_bounded_by_pipeline_depth() {
        // Each node's pipeline spans 3 cycles (dispatch 2k .. commit
        // 2k+3), so adjacent segments' covered spans overlap by at most
        // that depth per boundary. A 4-entry window over 32 nodes makes
        // 7 boundaries; the unsegmented walk is the exact reference.
        let stream: Vec<CritNode> = (0..32u64)
            .map(|k| node(0x700 + 4 * (k % 5), 2 * k, 2 * k, 2 * k + 1, 2 * k + 2, 2 * k + 3))
            .collect();
        let mut small = CritWindow::with_capacity(4);
        let mut big = CritWindow::with_capacity(64);
        for n in &stream {
            small.edge_retire(*n);
            big.edge_retire(*n);
        }
        let (rs, rb) = (small.path_report(), big.path_report());
        assert_eq!(rs.window_dropped, 0);
        assert_eq!(rs.window_recorded, rb.window_recorded);
        assert!(!rs.truncated, "no cross-segment producers on this stream");
        assert!(
            rs.attributed_cycles >= rb.attributed_cycles,
            "segmentation must not lose coverage: {rs:?}\n{rb:?}"
        );
        assert!(
            rs.attributed_cycles - rb.attributed_cycles <= 7 * 3,
            "boundary overlap exceeded a pipeline depth per segment: {rs:?}\n{rb:?}"
        );
        assert_eq!(rs.class_cycles.iter().sum::<u64>(), rs.attributed_cycles);
    }

    #[test]
    fn shares_sum_to_one_and_pcs_are_ranked() {
        let mut w = CritWindow::with_capacity(16);
        let mut lood = node(0x500, 0, 0, 1, 30, 31);
        lood.fill = FillKind::RemoteFill;
        lood.sent = 0;
        w.edge_retire(lood);
        let mut dep = node(0x504, 1, 30, 31, 33, 34);
        dep.producer_back = 1;
        w.edge_retire(dep);
        let r = w.path_report();
        let share_sum: f64 = EdgeClass::ALL.iter().map(|&c| r.class_share(c)).sum();
        assert!((share_sum - 1.0).abs() < 1e-12, "shares sum to 1.0, got {share_sum}");
        for pair in r.crit_pcs.windows(2) {
            assert!(
                pair[0].cycles > pair[1].cycles
                    || (pair[0].cycles == pair[1].cycles && pair[0].pc < pair[1].pc),
                "crit-PC table out of order: {:?}",
                r.crit_pcs
            );
        }
    }

    #[test]
    fn recording_never_grows_the_buffer() {
        let mut w = CritWindow::with_capacity(8);
        let cap = w.capacity();
        let ptr = w.buf.as_ptr();
        for k in 0..100u64 {
            w.edge_retire(node(0, k, k, k, k, k));
        }
        assert_eq!(w.capacity(), cap, "capacity must never change");
        assert_eq!(w.buf.as_ptr(), ptr, "storage must never reallocate");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_is_rejected() {
        let _ = CritWindow::with_capacity(0);
    }

    #[test]
    fn report_is_deterministic() {
        let build = || {
            let mut w = CritWindow::with_capacity(8);
            for k in 0..20u64 {
                let mut n = node(0x600 + 4 * (k % 3), k, k, k + 1, k + 3, k + 4);
                n.producer_back = if k % 2 == 0 { 1 } else { 0 };
                w.edge_retire(n);
            }
            w.path_report()
        };
        assert_eq!(build(), build());
    }
}
